//! Fault-injection sweep: sort under increasing fault intensity, both
//! executors.
//!
//! The same seeded random fault plan (machine crashes, degraded disks and
//! links, stragglers — see `cluster::FaultPlan::random`) is injected into the
//! Spark-like and the monotasks executor at each intensity point. Emits one
//! JSON record per (engine, intensity): simulated makespan, inflation over
//! the engine's fault-free makespan, and the recovery-overhead counters
//! (retries, speculative copies, wasted and recomputed seconds).
//!
//! Everything simulated is deterministic: the same binary on any host must
//! produce identical makespans and counters, which `--check` exploits — it
//! compares the measured makespans against the committed baseline *exactly*
//! (plus a wall-clock budget), so CI catches both behavioral drift and
//! perf regressions.
//!
//! `--matrix` switches to the *speculation matrix*: straggler-only plans
//! (no crashes, no degraded hardware) run under three mitigation modes —
//! none, slot-level (Spark-style whole-task duplicates), and monotask-level
//! (only the straggling monotask is re-dispatched). The matrix quantifies
//! the paper's decomposition argument: per-monotask duplicates recover the
//! straggler makespan while wasting strictly less work, because a compute
//! duplicate moves zero bytes where a whole-task duplicate re-reads its
//! entire input.
//!
//! `--partitions` switches to the *partition sweep*: partition-only plans
//! (one seeded window isolating `≈ intensity` machines mid-shuffle) run
//! with fetch timeout/retry/backoff armed and the input 2-way replicated,
//! so recovery can re-plan block reads against a reachable replica and
//! resubmit unreachable shuffle lineage. Each point also records the
//! partition-recovery counters (fetch retries, stalled and backoff seconds,
//! re-planned fetches), and `--check` compares those counters exactly along
//! with the makespans.
//!
//! Usage:
//!   fault_sweep [--matrix | --partitions] [--out PATH] [--points 0,0.5,1,2]
//!               [--check BASELINE.json --max-factor 2.0]
//!
//! The output path defaults to `$FAULT_SWEEP_OUT`, or `BENCH_PR3.json`
//! (`BENCH_PR5.json` with `--matrix`, `BENCH_PR8.json` with
//! `--partitions`). `--check` never rewrites the committed record.

use std::time::Instant;

use cluster::{ClusterSpec, FaultPlan, MachineSpec};
use mt_bench::header;
use workloads::{partition_plan, sort_job, straggler_plan, sweep_plan, SortConfig};

const MACHINES: usize = 5;
const GIB_PER_MACHINE: f64 = 2.0;
const SEED: u64 = 42;

const DEFAULT_POINTS: &[f64] = &[0.0, 0.5, 1.0, 2.0];

struct Point {
    engine: &'static str,
    intensity: f64,
    completed: bool,
    error: String,
    makespan_s: f64,
    inflation: f64,
    tasks_retried: u64,
    tasks_speculated: u64,
    wasted_s: f64,
    wasted_bytes: u64,
    mono_copies: u64,
    mono_copy_wins: u64,
    recompute_s: f64,
    fetch_retries: u64,
    stalled_s: f64,
    backoff_s: f64,
    fetches_replanned: u64,
    wall_s: f64,
}

fn cluster() -> ClusterSpec {
    ClusterSpec::new(MACHINES, MachineSpec::m2_4xlarge())
}

fn workload(partitions: bool) -> (dataflow::JobSpec, dataflow::BlockMap) {
    let cfg = SortConfig::new(GIB_PER_MACHINE * MACHINES as f64, 10, MACHINES, 2);
    let (job, blocks) = sort_job(&cfg);
    if !partitions {
        return (job, blocks);
    }
    // The partition sweep replicates the input 2-way (the HDFS default the
    // paper assumes) so recovery has a reachable replica to re-plan block
    // reads against when a primary is isolated.
    let n_blocks = job.stages[0].tasks.len();
    let replicated = dataflow::BlockMap::round_robin_replicated(n_blocks, MACHINES, 2, 2);
    (job, replicated)
}

/// Stall timeout armed in partition mode; retries (3) and backoff base
/// (1 s) stay at the executor defaults.
const FETCH_TIMEOUT_S: f64 = 5.0;

/// The fault horizon is the *fault-free monotasks makespan*: simulated, hence
/// identical on every host, so the generated plans — and therefore the whole
/// sweep — are reproducible everywhere. The matrix draws straggler-only
/// plans from the same seed so its points isolate mitigation from recovery.
fn plan_for(
    matrix: bool,
    partitions: bool,
    intensity: f64,
    horizon_s: f64,
    tasks_per_stage: usize,
) -> FaultPlan {
    if intensity <= 0.0 {
        return FaultPlan::new();
    }
    if partitions {
        partition_plan(SEED, &cluster(), horizon_s, intensity)
    } else if matrix {
        straggler_plan(SEED, &cluster(), horizon_s, 2, tasks_per_stage, intensity)
    } else {
        sweep_plan(SEED, &cluster(), horizon_s, 2, tasks_per_stage, intensity)
    }
}

/// The speculation knob both engines share in speculative modes; 1.5 is the
/// Spark default (`spark.speculation.multiplier`).
const SPEC_MULTIPLIER: f64 = 1.5;

fn run_mono(
    engine: &'static str,
    spec: bool,
    partitions: bool,
    plan: &FaultPlan,
    intensity: f64,
    baseline_s: f64,
) -> Point {
    let (job, blocks) = workload(partitions);
    let cfg = monotasks_core::MonoConfig {
        collect_traces: false,
        mono_speculation_multiplier: spec.then_some(SPEC_MULTIPLIER),
        mono_speculation_min_runtime: spec.then_some(0.05),
        fetch_timeout_secs: partitions.then_some(FETCH_TIMEOUT_S),
        ..monotasks_core::MonoConfig::default()
    };
    let start = Instant::now();
    let result = monotasks_core::run_with_faults(&cluster(), &[(job, blocks)], &cfg, plan);
    let wall_s = start.elapsed().as_secs_f64();
    match result {
        Ok(out) => Point {
            engine,
            intensity,
            completed: true,
            error: String::new(),
            makespan_s: out.makespan.as_secs_f64(),
            inflation: if baseline_s > 0.0 {
                out.makespan.as_secs_f64() / baseline_s
            } else {
                1.0
            },
            tasks_retried: out.stats.tasks_retried,
            tasks_speculated: out.stats.tasks_speculated,
            wasted_s: out.stats.wasted_work_secs(),
            wasted_bytes: out.stats.wasted_bytes,
            mono_copies: out.stats.mono_copies,
            mono_copy_wins: out.stats.mono_copy_wins,
            recompute_s: out.stats.recompute_secs(),
            fetch_retries: out.stats.fetch_retries,
            stalled_s: out.stats.stalled_fetch_nanos as f64 / 1e9,
            backoff_s: out.stats.fetch_backoff_nanos as f64 / 1e9,
            fetches_replanned: out.stats.fetches_replanned,
            wall_s,
        },
        Err(e) => failed_point(engine, intensity, e.to_string(), wall_s),
    }
}

fn run_spark(
    engine: &'static str,
    spec: bool,
    partitions: bool,
    plan: &FaultPlan,
    intensity: f64,
    baseline_s: f64,
) -> Point {
    let (job, blocks) = workload(partitions);
    let cfg = sparklike::SparkConfig {
        speculation_multiplier: spec.then_some(SPEC_MULTIPLIER),
        fetch_timeout_secs: partitions.then_some(FETCH_TIMEOUT_S),
        ..sparklike::SparkConfig::default()
    };
    let start = Instant::now();
    let result = sparklike::run_with_faults(&cluster(), &[(job, blocks)], &cfg, plan);
    let wall_s = start.elapsed().as_secs_f64();
    match result {
        Ok(out) => Point {
            engine,
            intensity,
            completed: true,
            error: String::new(),
            makespan_s: out.makespan.as_secs_f64(),
            inflation: if baseline_s > 0.0 {
                out.makespan.as_secs_f64() / baseline_s
            } else {
                1.0
            },
            tasks_retried: out.stats.tasks_retried,
            tasks_speculated: out.stats.tasks_speculated,
            wasted_s: out.stats.wasted_work_secs(),
            wasted_bytes: out.stats.wasted_bytes,
            mono_copies: 0,
            mono_copy_wins: 0,
            recompute_s: out.stats.recompute_secs(),
            fetch_retries: out.stats.fetch_retries,
            stalled_s: out.stats.stalled_fetch_nanos as f64 / 1e9,
            backoff_s: out.stats.fetch_backoff_nanos as f64 / 1e9,
            fetches_replanned: out.stats.fetches_replanned,
            wall_s,
        },
        Err(e) => failed_point(engine, intensity, e.to_string(), wall_s),
    }
}

fn failed_point(engine: &'static str, intensity: f64, error: String, wall_s: f64) -> Point {
    Point {
        engine,
        intensity,
        completed: false,
        error,
        makespan_s: 0.0,
        inflation: 0.0,
        tasks_retried: 0,
        tasks_speculated: 0,
        wasted_s: 0.0,
        wasted_bytes: 0,
        mono_copies: 0,
        mono_copy_wins: 0,
        recompute_s: 0.0,
        fetch_retries: 0,
        stalled_s: 0.0,
        backoff_s: 0.0,
        fetches_replanned: 0,
        wall_s,
    }
}

struct Args {
    out: Option<String>,
    points: Vec<f64>,
    check: Option<String>,
    max_factor: f64,
    matrix: bool,
    partitions: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: std::env::var("FAULT_SWEEP_OUT").ok(),
        points: DEFAULT_POINTS.to_vec(),
        check: None,
        max_factor: 2.0,
        matrix: false,
        partitions: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match a.as_str() {
            "--out" => args.out = Some(value("--out")),
            "--matrix" => args.matrix = true,
            "--partitions" => args.partitions = true,
            "--points" => {
                args.points = value("--points")
                    .split(',')
                    .map(|s| s.trim().parse().expect("bad --points entry"))
                    .collect();
            }
            "--check" => args.check = Some(value("--check")),
            "--max-factor" => {
                args.max_factor = value("--max-factor").parse().expect("bad --max-factor")
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    assert!(
        !(args.matrix && args.partitions),
        "--matrix and --partitions are mutually exclusive"
    );
    args
}

/// Pulls numeric fields out of the sweep JSON without a JSON dependency:
/// each point record is one line with known key order.
fn field(line: &str, key: &str) -> Option<f64> {
    let rest = &line[line.find(key)? + key.len()..];
    let rest = rest.trim_start_matches([':', ' ']);
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

struct BaseRec {
    engine: String,
    intensity: f64,
    makespan_s: f64,
    wall_s: f64,
    // Recovery counters, absent in baselines written before the partition
    // sweep; only compared when the baseline recorded them.
    tasks_retried: Option<f64>,
    fetch_retries: Option<f64>,
    fetches_replanned: Option<f64>,
}

fn baseline_records(json: &str) -> Vec<BaseRec> {
    json.lines()
        .filter_map(|line| {
            let engine = {
                let rest = &line[line.find("\"engine\"")? + 8..];
                let rest = &rest[rest.find('"')? + 1..];
                rest[..rest.find('"')?].to_string()
            };
            Some(BaseRec {
                engine,
                intensity: field(line, "\"intensity\"")?,
                makespan_s: field(line, "\"makespan_s\"")?,
                wall_s: field(line, "\"wall_s\"")?,
                tasks_retried: field(line, "\"tasks_retried\""),
                fetch_retries: field(line, "\"fetch_retries\""),
                fetches_replanned: field(line, "\"fetches_replanned\""),
            })
        })
        .collect()
}

/// Engine rows of the sweep: a label, which executor, and whether its
/// speculation knob is armed. The classic sweep pins Spark speculation on
/// (its recovery story needs it) and monotask speculation off, matching the
/// committed BENCH_PR3 baseline; the matrix and the partition sweep cross
/// all four mitigation modes.
fn engines(matrix: bool, partitions: bool) -> Vec<(&'static str, bool, bool)> {
    if matrix || partitions {
        vec![
            ("spark", true, false),
            ("spark+spec", true, true),
            ("mono", false, false),
            ("mono+spec", false, true),
        ]
    } else {
        vec![("spark", true, true), ("mono", false, false)]
    }
}

fn main() {
    let args = parse_args();
    if args.partitions {
        header(
            "fault_sweep --partitions",
            "sort under partition-only plans with 2-way replicated input, both executors",
            "fetch timeout/retry/backoff plus replica re-planning and lineage \
             resubmission complete the job through a network partition instead \
             of hanging; exhausted retries fail fast with a structured error",
        );
    } else if args.matrix {
        header(
            "fault_sweep --matrix",
            "sort under straggler-only plans: no, slot-level, and monotask-level speculation",
            "monotask-level speculation recovers the straggler makespan while wasting \
             strictly less work than slot-level whole-task duplicates",
        );
    } else {
        header(
            "fault_sweep",
            "sort under increasing fault intensity, both executors",
            "recovery (lineage resubmission, retries, speculation) completes the job; \
             makespan inflation and overhead counters quantify the cost",
        );
    }
    // Fault-free baselines: intensity 0 for each engine row, run once.
    let tasks_per_stage = {
        let (job, _) = workload(args.partitions);
        job.stages.iter().map(|s| s.tasks.len()).max().unwrap_or(1)
    };
    let empty = FaultPlan::new();
    let rows = engines(args.matrix, args.partitions);
    let bases: Vec<Point> = rows
        .iter()
        .map(|&(engine, is_spark, spec)| {
            let p = if is_spark {
                run_spark(engine, spec, args.partitions, &empty, 0.0, 0.0)
            } else {
                run_mono(engine, spec, args.partitions, &empty, 0.0, 0.0)
            };
            assert!(
                p.completed,
                "fault-free baseline failed: {}={}",
                engine, p.error
            );
            p
        })
        .collect();
    let horizon_s = bases
        .iter()
        .zip(&rows)
        .find(|(_, (engine, _, _))| *engine == "mono")
        .map(|(p, _)| p.makespan_s)
        .expect("mono row always present");
    println!(
        "{:>10} {:>9} {:>11} {:>9} {:>8} {:>10} {:>9} {:>11} {:>7} {:>5} {:>8}",
        "engine",
        "intensity",
        "makespan(s)",
        "inflate",
        "retried",
        "speculated",
        "wasted(s)",
        "wasted(MiB)",
        "copies",
        "wins",
        "wall(s)"
    );
    let mut points: Vec<Point> = Vec::new();
    for &intensity in &args.points {
        for (i, &(engine, is_spark, spec)) in rows.iter().enumerate() {
            let p = if intensity == 0.0 {
                // Reuse the baseline run instead of re-simulating it.
                Point {
                    inflation: 1.0,
                    error: String::new(),
                    ..clone_point(&bases[i])
                }
            } else {
                let plan = plan_for(
                    args.matrix,
                    args.partitions,
                    intensity,
                    horizon_s,
                    tasks_per_stage,
                );
                if is_spark {
                    run_spark(
                        engine,
                        spec,
                        args.partitions,
                        &plan,
                        intensity,
                        bases[i].makespan_s,
                    )
                } else {
                    run_mono(
                        engine,
                        spec,
                        args.partitions,
                        &plan,
                        intensity,
                        bases[i].makespan_s,
                    )
                }
            };
            if p.completed {
                println!(
                    "{:>10} {:>9} {:>11.1} {:>9.2} {:>8} {:>10} {:>9.1} {:>11.1} {:>7} {:>5} {:>8.3}",
                    p.engine,
                    p.intensity,
                    p.makespan_s,
                    p.inflation,
                    p.tasks_retried,
                    p.tasks_speculated,
                    p.wasted_s,
                    p.wasted_bytes as f64 / (1024.0 * 1024.0),
                    p.mono_copies,
                    p.mono_copy_wins,
                    p.wall_s
                );
            } else {
                println!("{:>10} {:>9} failed: {}", p.engine, p.intensity, p.error);
            }
            points.push(p);
        }
    }
    if let Some(baseline_path) = &args.check {
        let baseline = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("read {baseline_path}: {e}"));
        let records = baseline_records(&baseline);
        let mut failed = false;
        for p in &points {
            let Some(rec) = records
                .iter()
                .find(|r| r.engine == p.engine && (r.intensity - p.intensity).abs() < 1e-9)
            else {
                println!(
                    "check: {} intensity {} not in baseline, skipping",
                    p.engine, p.intensity
                );
                continue;
            };
            // Makespans are simulated: any drift at all is a behavior change
            // (the baseline file stores 3 decimals, so compare at that grain).
            let mk_ok = (p.makespan_s - rec.makespan_s).abs() < 5e-4;
            // Recovery counters are integers and simulated too: compare them
            // exactly, but only when the baseline recorded them (pre-partition
            // baselines lack the fetch counters).
            let counters = [
                ("tasks_retried", rec.tasks_retried, p.tasks_retried),
                ("fetch_retries", rec.fetch_retries, p.fetch_retries),
                (
                    "fetches_replanned",
                    rec.fetches_replanned,
                    p.fetches_replanned,
                ),
            ];
            let mut ctr_ok = true;
            for (name, base, got) in counters {
                if let Some(base) = base {
                    if (base - got as f64).abs() > 0.5 {
                        println!(
                            "check: {} intensity {} {name} {got} vs baseline {base} DRIFTED",
                            p.engine, p.intensity
                        );
                        ctr_ok = false;
                    }
                }
            }
            // Wall clock gets the same budget guard as scale_sweep, with a
            // floor so tiny points don't measure scheduler noise.
            let budget = (rec.wall_s * args.max_factor).max(0.25);
            let wall_ok = p.wall_s <= budget;
            println!(
                "check: {} intensity {} makespan {:.3}s vs {:.3}s {} | wall {:.3}s (budget {:.3}s) {}",
                p.engine,
                p.intensity,
                p.makespan_s,
                rec.makespan_s,
                if mk_ok { "OK" } else { "DRIFTED" },
                p.wall_s,
                budget,
                if wall_ok { "OK" } else { "REGRESSED" }
            );
            failed |= !mk_ok || !ctr_ok || !wall_ok;
        }
        if failed {
            eprintln!("fault_sweep --check: makespan/counter drift or wall-clock budget exceeded");
            std::process::exit(1);
        }
        return; // check mode never rewrites the committed record
    }
    let bench = if args.partitions {
        "fault_sweep --partitions"
    } else if args.matrix {
        "fault_sweep --matrix"
    } else {
        "fault_sweep"
    };
    let mut json = format!("{{\n  \"bench\": \"{bench}\",\n  \"workload\": \"sort\",\n");
    json.push_str(&format!(
        "  \"machines\": {MACHINES},\n  \"gib_per_machine\": {GIB_PER_MACHINE},\n  \
         \"seed\": {SEED},\n  \"points\": [\n"
    ));
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"engine\": \"{}\", \"intensity\": {}, \"completed\": {}, \
             \"makespan_s\": {:.3}, \"inflation\": {:.3}, \"tasks_retried\": {}, \
             \"tasks_speculated\": {}, \"wasted_s\": {:.3}, \"wasted_bytes\": {}, \
             \"mono_copies\": {}, \"mono_copy_wins\": {}, \"recompute_s\": {:.3}, \
             \"fetch_retries\": {}, \"stalled_s\": {:.3}, \"backoff_s\": {:.3}, \
             \"fetches_replanned\": {}, \"wall_s\": {:.3}}}{}\n",
            p.engine,
            p.intensity,
            p.completed,
            p.makespan_s,
            p.inflation,
            p.tasks_retried,
            p.tasks_speculated,
            p.wasted_s,
            p.wasted_bytes,
            p.mono_copies,
            p.mono_copy_wins,
            p.recompute_s,
            p.fetch_retries,
            p.stalled_s,
            p.backoff_s,
            p.fetches_replanned,
            p.wall_s,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let out = args.out.unwrap_or_else(|| {
        if args.partitions {
            "BENCH_PR8.json".to_string()
        } else if args.matrix {
            "BENCH_PR5.json".to_string()
        } else {
            "BENCH_PR3.json".to_string()
        }
    });
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("\nwrote {out}");
}

fn clone_point(p: &Point) -> Point {
    Point {
        engine: p.engine,
        intensity: p.intensity,
        completed: p.completed,
        error: p.error.clone(),
        makespan_s: p.makespan_s,
        inflation: p.inflation,
        tasks_retried: p.tasks_retried,
        tasks_speculated: p.tasks_speculated,
        wasted_s: p.wasted_s,
        wasted_bytes: p.wasted_bytes,
        mono_copies: p.mono_copies,
        mono_copy_wins: p.mono_copy_wins,
        recompute_s: p.recompute_s,
        fetch_retries: p.fetch_retries,
        stalled_s: p.stalled_s,
        backoff_s: p.backoff_s,
        fetches_replanned: p.fetches_replanned,
        wall_s: p.wall_s,
    }
}
