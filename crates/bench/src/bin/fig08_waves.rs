//! Figure 8: sensitivity to the number of tasks (waves).
//!
//! Paper: for a job that reads input and computes on it, on 20 workers
//! (160 cores), "Spark is faster than MonoSpark with only one or two waves
//! of tasks, but by three waves, MonoSpark's pipelining across tasks has
//! overcome the performance penalty of eliminating fine-grained pipelining."

use cluster::{ClusterSpec, MachineSpec};
use dataflow::{BlockMap, CostModel, JobBuilder};
use mt_bench::{header, pct_diff, run_mono, run_spark};
use workloads::GIB;

fn main() {
    header(
        "Figure 8",
        "read + compute job vs task count, 20 workers (160 cores)",
        "Spark wins at 1-2 waves; parity from ~3 waves (480 tasks) on",
    );
    let cluster = ClusterSpec::new(20, MachineSpec::m2_4xlarge());
    let total = 75.0 * GIB;
    println!(
        "{:<7} {:>6} {:>10} {:>10} {:>8}",
        "tasks", "waves", "spark (s)", "mono (s)", "diff"
    );
    for tasks in [160usize, 320, 480, 800, 1600, 3200] {
        let job = JobBuilder::new("readcompute", CostModel::spark_1_3())
            .read_disk(total, total / 100.0, total / tasks as f64)
            .map(1.0, 1.0, true)
            .collect();
        let blocks = BlockMap::round_robin(tasks, 20, 2);
        let spark = run_spark(&cluster, job.clone(), blocks.clone());
        let mono = run_mono(&cluster, job, blocks);
        let s = spark.jobs[0].duration_secs();
        let m = mono.jobs[0].duration_secs();
        println!(
            "{:<7} {:>6.1} {:>10.1} {:>10.1} {:>+7.1}%",
            tasks,
            tasks as f64 / 160.0,
            s,
            m,
            pct_diff(s, m)
        );
    }
}
