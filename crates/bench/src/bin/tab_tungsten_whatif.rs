//! §9 what-if: a faster serializer (Project Tungsten).
//!
//! "Efforts to reduce serialization time would reduce the runtime for the
//! compute monotasks that perform (de)serialization in MonoSpark" — and
//! because compute monotasks report their (de)serialization split, the model
//! can predict that optimization's payoff *before anyone builds it*. We
//! validate by actually re-running with a 2× faster serializer in the cost
//! model.

use cluster::{ClusterSpec, MachineSpec};
use dataflow::{BlockMap, CostModel, JobBuilder, JobSpec};
use mt_bench::{header, pct_err, run_mono};
use perfmodel::{predict_job, profile_stages, Scenario};
use workloads::GIB;

fn sort_with(cost: CostModel) -> (JobSpec, BlockMap) {
    let total = 75.0 * GIB;
    let job = JobBuilder::new("sort", cost)
        // Small records: the CPU-bound end of the §6.2 sweep, where the
        // serializer is a visible fraction of compute time.
        .read_disk(total, total / 16.0, total / 600.0)
        .map(1.0, 1.0, true)
        .shuffle(600, false)
        .map(1.0, 1.0, true)
        .write_disk(1.0);
    (job, BlockMap::round_robin(600, 20, 2))
}

fn main() {
    header(
        "§9 what-if",
        "predict a 2x faster (de)serializer from monotask-reported splits",
        "serialization improvements are orthogonal to monotasks and predictable",
    );
    let cluster = ClusterSpec::new(20, MachineSpec::m2_4xlarge());
    let (job, blocks) = sort_with(CostModel::spark_1_3());
    let base = run_mono(&cluster, job, blocks);
    let profiles = profile_stages(&base.records, &base.jobs);
    let old = Scenario::of_cluster(&cluster);
    let mut tungsten = old.clone();
    tungsten.serde_speedup = 2.0;
    let measured = base.jobs[0].duration_secs();
    let predicted = predict_job(&profiles, measured, &old, &tungsten);

    // Ground truth: the same workload with serde costs actually halved.
    let mut fast = CostModel::spark_1_3();
    fast.ser_per_byte /= 2.0;
    fast.deser_per_byte /= 2.0;
    let (job2, blocks2) = sort_with(fast);
    let actual = run_mono(&cluster, job2, blocks2).jobs[0].duration_secs();

    println!("measured (Spark-1.3 serializer):  {measured:>7.1} s");
    println!("predicted with 2x serde:          {predicted:>7.1} s");
    println!("actual with 2x serde:             {actual:>7.1} s");
    println!(
        "prediction error:                 {:>7.1} %",
        pct_err(actual, predicted)
    );
    println!(
        "\n(Only monotasks can make this prediction: \"deserialization time \
         cannot be measured in Spark because of record-level pipelining\", §6.3.)"
    );
}
