//! Calibration audit (not a paper figure): prints mono-vs-spark runtimes and
//! per-stage ideal resource times for the core workloads, so the cost-model
//! constants in `dataflow::cost` and `cluster::hw` can be sanity-checked in
//! one place.

use cluster::{ClusterSpec, MachineSpec};
use mt_bench::{pct_diff, run_mono, run_spark};
use perfmodel::{profile_stages, Scenario};
use workloads::{bdb_job, sort_job, BdbQuery, SortConfig};

fn main() {
    // Sort on HDDs (scaled-down §5.2 shape).
    let cluster = ClusterSpec::new(20, MachineSpec::m2_4xlarge());
    for longs in [1usize, 4, 10, 25] {
        let cfg = SortConfig::new(150.0, longs, 20, 2);
        let (job, blocks) = sort_job(&cfg);
        let t0 = std::time::Instant::now();
        let mono = run_mono(&cluster, job.clone(), blocks.clone());
        let t_mono = t0.elapsed();
        let t0 = std::time::Instant::now();
        let spark = run_spark(&cluster, job, blocks);
        let t_spark = t0.elapsed();
        let m = mono.jobs[0].duration_secs();
        let s = spark.jobs[0].duration_secs();
        let profiles = profile_stages(&mono.records, &mono.jobs);
        let scen = Scenario::of_cluster(&cluster);
        print!(
            "sort150 longs={longs:<3} mono={m:8.1}s spark={s:8.1}s diff={:+6.1}% ",
            pct_diff(s, m)
        );
        for p in &profiles {
            let t = perfmodel::model::ideal_times(p, &scen);
            print!(
                " st{} [cpu {:.0} disk {:.0} net {:.0} | meas {:.0}]",
                p.stage.0, t.cpu, t.disk, t.network, p.measured_secs
            );
        }
        println!("  (wall mono {:?} spark {:?})", t_mono, t_spark);
    }

    // BDB on 5×2HDD.
    let cluster = ClusterSpec::new(5, MachineSpec::m2_4xlarge());
    for q in [
        BdbQuery::Q1a,
        BdbQuery::Q1c,
        BdbQuery::Q2b,
        BdbQuery::Q2c,
        BdbQuery::Q3c,
        BdbQuery::Q4,
    ] {
        let (job, blocks) = bdb_job(q, 5, 2);
        let t0 = std::time::Instant::now();
        let mono = run_mono(&cluster, job.clone(), blocks.clone());
        let spark = run_spark(&cluster, job.clone(), blocks.clone());
        let wt = sparklike::SparkConfig {
            write_through: true,
            ..sparklike::SparkConfig::default()
        };
        let spark_wt = sparklike::run(&cluster, &[(job, blocks)], &wt);
        let wall = t0.elapsed();
        let m = mono.jobs[0].duration_secs();
        let s = spark.jobs[0].duration_secs();
        let profiles = profile_stages(&mono.records, &mono.jobs);
        let scen = Scenario::of_cluster(&cluster);
        let swt = spark_wt.jobs[0].duration_secs();
        print!(
            "bdb-{:<3} mono={m:7.1}s spark={s:7.1}s wt={swt:7.1}s diff={:+6.1}% diff_wt={:+6.1}% ",
            q.label(),
            pct_diff(s, m),
            pct_diff(swt, m)
        );
        for p in &profiles {
            let t = perfmodel::model::ideal_times(p, &scen);
            print!(
                " st{} [cpu {:.0} disk {:.0} net {:.0}]",
                p.stage.0, t.cpu, t.disk, t.network
            );
        }
        println!("  (wall {:?})", wall);
    }
}
