//! Figure 7: machine-learning workload — per-stage Spark vs MonoSpark.
//!
//! Paper: a least-squares solve via block coordinate descent on 15 two-SSD
//! workers, with native-code CPU efficiency and in-memory shuffle, is
//! network-intensive; "MonoSpark provides performance on-par with Spark" in
//! every stage.

use cluster::{ClusterSpec, MachineSpec};
use mt_bench::{header, pct_diff};
use workloads::{ml_jobs, MlConfig};

fn main() {
    header(
        "Figure 7",
        "least-squares block coordinate descent, 15 workers x 2 SSDs",
        "per-stage runtimes on par (network-intensive, in-memory shuffle)",
    );
    let cfg = MlConfig::default();
    let cluster = ClusterSpec::new(cfg.machines, MachineSpec::i2_2xlarge(2));
    println!(
        "{:<18} {:>10} {:>10} {:>8}",
        "stage", "spark (s)", "mono (s)", "diff"
    );
    for (i, (job, blocks)) in ml_jobs(&cfg).into_iter().enumerate() {
        let spark = sparklike::run(
            &cluster,
            &[(job.clone(), blocks.clone())],
            &sparklike::SparkConfig::default(),
        );
        let mono = monotasks_core::run(
            &cluster,
            &[(job, blocks)],
            &monotasks_core::MonoConfig::default(),
        );
        for (si, (ss, ms)) in spark.jobs[0]
            .stages
            .iter()
            .zip(&mono.jobs[0].stages)
            .enumerate()
        {
            let s = ss.duration().as_secs_f64();
            let m = ms.duration().as_secs_f64();
            let name = if si == 0 {
                "multiply (map)"
            } else {
                "sum (reduce)"
            };
            println!(
                "iter{} {:<12} {:>10.1} {:>10.1} {:>+7.1}%",
                i,
                name,
                s,
                m,
                pct_diff(s, m)
            );
        }
    }
}
