//! Trace export harness: emit a Perfetto-loadable trace for one run and
//! score the fault-replay model against simulated ground truth.
//!
//! Runs the `fault_sweep` sort workload on either engine with the trace
//! layer armed, writes the Chrome Trace Event JSON (open it at
//! `ui.perfetto.dev`), validates it with the dependency-free checker, and —
//! for each requested fault intensity — compares `perfmodel::replay`'s
//! predicted makespan against the simulated one. Everything simulated is
//! deterministic, so the emitted trace bytes are identical on every host.
//!
//! Usage:
//!   trace_export [--machines N] [--gib-per-machine G] [--engine mono|spark|both]
//!                [--points 0,1] [--out PATH] [--validate]
//!
//! `--out` defaults to `$TRACE_EXPORT_OUT` or `trace_{engine}.json`. The
//! 100-machine CI artifact is produced with `--machines 100 --validate`.

use std::path::PathBuf;

use cluster::{ClusterSpec, FaultPlan, MachineSpec};
use mt_bench::header;
use mt_trace::{validate_chrome_json, TraceSummary};
use workloads::{sort_job, sweep_plan, SortConfig};

const SEED: u64 = 42;

struct Args {
    machines: usize,
    gib_per_machine: f64,
    engine: String,
    points: Vec<f64>,
    out: Option<PathBuf>,
    validate: bool,
    explain: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        machines: 5,
        gib_per_machine: 2.0,
        engine: "mono".into(),
        points: vec![0.0, 1.0],
        out: None,
        validate: false,
        explain: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--machines" => {
                args.machines = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--machines N");
            }
            "--gib-per-machine" => {
                args.gib_per_machine = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--gib-per-machine G");
            }
            "--engine" => {
                args.engine = it.next().expect("--engine mono|spark|both");
            }
            "--points" => {
                args.points = it
                    .next()
                    .expect("--points list")
                    .split(',')
                    .map(|s| s.trim().parse().expect("numeric intensity"))
                    .collect();
            }
            "--out" => args.out = Some(PathBuf::from(it.next().expect("--out PATH"))),
            "--validate" => args.validate = true,
            "--explain" => args.explain = true,
            other => panic!("unknown argument {other:?}"),
        }
    }
    args
}

fn cluster(machines: usize) -> ClusterSpec {
    ClusterSpec::new(machines, MachineSpec::m2_4xlarge())
}

fn workload(machines: usize, gib_per_machine: f64) -> (dataflow::JobSpec, dataflow::BlockMap) {
    let cfg = SortConfig::new(gib_per_machine * machines as f64, 10, machines, 2);
    sort_job(&cfg)
}

fn out_path(args: &Args, engine: &str) -> PathBuf {
    match &args.out {
        Some(p) if args.engine != "both" => p.clone(),
        Some(p) => {
            // Suffix the engine when one invocation writes two traces.
            let stem = p.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
            p.with_file_name(format!("{stem}_{engine}.json"))
        }
        None => match std::env::var("TRACE_EXPORT_OUT") {
            Ok(p) => PathBuf::from(p),
            Err(_) => PathBuf::from(format!("trace_{engine}.json")),
        },
    }
}

fn check(path: &PathBuf) {
    let json = std::fs::read_to_string(path).expect("read emitted trace");
    match validate_chrome_json(&json) {
        Ok(stats) => println!(
            "  validated: {} metas, {} spans, {} instants, {} counter samples",
            stats.metas, stats.spans, stats.instants, stats.counters
        ),
        Err(e) => panic!("emitted trace failed validation: {e}"),
    }
}

fn run_mono(args: &Args) {
    let cl = cluster(args.machines);
    let (job, blocks) = workload(args.machines, args.gib_per_machine);
    let path = out_path(args, "mono");
    let cfg = monotasks_core::MonoConfig {
        trace_path: Some(path.clone()),
        ..monotasks_core::MonoConfig::default()
    };

    // Fault-free baseline: profile it, trace it, export it.
    let base = monotasks_core::run(&cl, &[(job.clone(), blocks.clone())], &cfg);
    let written = mt_trace::export_mono(&cfg, &base)
        .expect("write trace")
        .expect("trace_path was set");
    let summary = TraceSummary::of(&mt_trace::mono_doc(&base));
    println!(
        "mono: {} machines, makespan {:.3}s -> {} ({} spans, {} instants, {} counter samples)",
        args.machines,
        base.makespan.as_secs_f64(),
        written.display(),
        summary.spans,
        summary.instants,
        summary.counter_points
    );
    if args.validate {
        check(&written);
    }

    // Fault replay: predicted vs simulated makespan per intensity.
    let profiles = perfmodel::profile_stages(&base.records, &base.jobs);
    let tasks_per_stage: Vec<usize> = profiles
        .iter()
        .map(|p| job.stages[p.stage.0 as usize].tasks.len())
        .collect();
    let opts = perfmodel::ReplayOptions {
        scenario: perfmodel::Scenario::of_cluster(&cl),
        tasks_per_stage,
    };
    let baseline_s = base.makespan.as_secs_f64();
    let horizon = baseline_s;
    let tasks0 = job.stages[0].tasks.len();
    println!(
        "  {:>9} {:>12} {:>12} {:>8}",
        "intensity", "simulated_s", "predicted_s", "err%"
    );
    for &intensity in &args.points {
        let plan = if intensity <= 0.0 {
            FaultPlan::new()
        } else {
            sweep_plan(SEED, &cl, horizon, job.stages.len(), tasks0, intensity)
        };
        // The highest faulty point also exports its trace, so the artifact
        // shows the instant markers (crashes, degradations, retries, copies)
        // alongside the spans they perturb.
        let max_pt = args.points.iter().cloned().fold(0.0, f64::max);
        let faulty_cfg = if intensity > 0.0 && intensity == max_pt {
            let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
            monotasks_core::MonoConfig {
                trace_path: Some(path.with_file_name(format!("{stem}_faults.json"))),
                ..monotasks_core::MonoConfig::default()
            }
        } else {
            monotasks_core::MonoConfig::default()
        };
        let sim = monotasks_core::run_with_faults(
            &cl,
            &[(job.clone(), blocks.clone())],
            &faulty_cfg,
            &plan,
        )
        .expect("faulty run completes");
        if let Some(p) = mt_trace::export_mono(&faulty_cfg, &sim).expect("write faulty trace") {
            let s = TraceSummary::of(&mt_trace::mono_doc(&sim));
            println!(
                "  faulty trace -> {} ({} spans, {} instants)",
                p.display(),
                s.spans,
                s.instants
            );
            if args.validate {
                check(&p);
            }
        }
        let pred = perfmodel::replay(&profiles, &base.jobs, baseline_s, &plan, &opts);
        let err = pred.relative_error(sim.makespan.as_secs_f64());
        if args.explain {
            for p in &pred.penalties {
                println!("    {:<18} {:+9.3}s", p.label, p.penalty_secs);
            }
        }
        println!(
            "  {:>9.2} {:>12.3} {:>12.3} {:>7.1}%",
            intensity,
            sim.makespan.as_secs_f64(),
            pred.predicted_secs,
            err * 100.0
        );
        // The band is calibrated for intensities ≤ 1 (see
        // perfmodel::DOCUMENTED_ERROR_BAND); higher points print but don't
        // gate.
        assert!(
            intensity > 1.0 || err.abs() <= perfmodel::DOCUMENTED_ERROR_BAND,
            "replay error {:.1}% exceeds the documented ±{:.0}% band at intensity {}",
            err * 100.0,
            perfmodel::DOCUMENTED_ERROR_BAND * 100.0,
            intensity
        );
    }
}

fn run_spark(args: &Args) {
    let cl = cluster(args.machines);
    let (job, blocks) = workload(args.machines, args.gib_per_machine);
    let path = out_path(args, "spark");
    let cfg = sparklike::SparkConfig {
        trace_path: Some(path.clone()),
        ..sparklike::SparkConfig::default()
    };
    let out = sparklike::run(&cl, &[(job, blocks)], &cfg);
    let written = mt_trace::export_spark(&cfg, &out)
        .expect("write trace")
        .expect("trace_path was set");
    let summary = TraceSummary::of(&mt_trace::spark_doc(&out));
    println!(
        "spark: {} machines, makespan {:.3}s -> {} ({} spans, {} instants, {} counter samples)",
        args.machines,
        out.makespan.as_secs_f64(),
        written.display(),
        summary.spans,
        summary.instants,
        summary.counter_points
    );
    if args.validate {
        check(&written);
    }
}

fn main() {
    let args = parse_args();
    header(
        "trace_export",
        "Perfetto trace emission + fault-replay scoring",
        "per-resource monotask timings make performance visible (§6.5); \
         the same profiles predict faulty-run makespans (DESIGN.md §10)",
    );
    match args.engine.as_str() {
        "mono" => run_mono(&args),
        "spark" => run_spark(&args),
        "both" => {
            run_mono(&args);
            run_spark(&args);
        }
        other => panic!("unknown engine {other:?} (mono|spark|both)"),
    }
}
