//! Figure 9: utilization during the map stage of query 2c.
//!
//! Paper: "with MonoSpark, per-resource schedulers keep the bottleneck
//! resource fully utilized": CPU averages over 92% on all machines, while
//! Spark reaches only 75–83% because tasks sporadically block on disk while
//! cores sit idle.

use cluster::{ClusterSpec, MachineId, MachineSpec, ResourceSel};
use mt_bench::{header, run_mono, run_spark};
use simcore::SimDuration;
use workloads::{bdb_job, BdbQuery};

fn main() {
    header(
        "Figure 9",
        "utilization during the map stage of BDB query 2c",
        "mono keeps bottleneck CPU >92% busy; Spark 75-83% \
         (our fluid baseline never blocks at record granularity, so Spark's \
         dips are smaller here — see EXPERIMENTS.md note 4)",
    );
    let cluster = ClusterSpec::new(5, MachineSpec::m2_4xlarge());
    let (job, blocks) = bdb_job(BdbQuery::Q2c, 5, 2);
    let spark = run_spark(&cluster, job.clone(), blocks.clone());
    let mono = run_mono(&cluster, job, blocks);

    for (name, st, traces) in [
        ("spark", &spark.jobs[0].stages[0], &spark.traces),
        ("mono", &mono.jobs[0].stages[0], &mono.traces),
    ] {
        // Mean CPU utilization per machine over the map stage.
        let mut means = Vec::new();
        for m in 0..5 {
            means.push(traces.class_means(MachineId(m), st.start, st.end).cpu);
        }
        let avg = means.iter().sum::<f64>() / means.len() as f64;
        println!(
            "{name:<6} map-stage CPU utilization: avg {:.1}%  per-machine {:?}",
            avg * 100.0,
            means
                .iter()
                .map(|m| (m * 100.0).round() as i64)
                .collect::<Vec<_>>()
        );
        // 30-second slice of the second-by-second series on machine 0.
        let to = st
            .start
            .saturating_add(SimDuration::from_secs(30))
            .min(st.end);
        let cpu = traces.series(
            MachineId(0),
            ResourceSel::Cpu,
            st.start,
            to,
            SimDuration::from_secs(1),
        );
        let disk = traces.series(
            MachineId(0),
            ResourceSel::Disk(0),
            st.start,
            to,
            SimDuration::from_secs(1),
        );
        println!("  cpu  {}", mt_bench::ascii::sparkline(&cpu));
        println!("  disk {}", mt_bench::ascii::sparkline(&disk));
    }
}
