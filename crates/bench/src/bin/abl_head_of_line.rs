//! Ablation: head-of-line blocking from large monotasks (§8).
//!
//! "A monotask that reads a large amount of data from disk may block other
//! tasks reading from that disk. This is not an issue with current
//! frameworks because tasks share access to each resource at fine
//! granularity. Using smaller tasks mitigates this problem with monotasks."
//!
//! We fix a Zipf-skewed set of 16 input files on one machine, measure the
//! queueing the big files inflict on their siblings' reads, then split the
//! same files into more, smaller tasks and watch the penalty fade.

use cluster::{ClusterSpec, MachineSpec};
use dataflow::{BlockMap, CostModel, JobBuilder};
use mt_bench::header;
use workloads::{apply_input_skew, input_skew_ratio, GIB};

fn main() {
    header(
        "Ablation: §8 head-of-line blocking",
        "one oversized monotask vs its siblings' queue delays",
        "large monotasks block the disk; smaller tasks mitigate",
    );
    let cluster = ClusterSpec::new(1, MachineSpec::m2_4xlarge());
    println!(
        "{:<18} {:>10} {:>22} {:>18}",
        "tasks", "total (s)", "median read wait (s)", "max read wait (s)"
    );
    // The *data* is fixed: 16 Zipf-sized files (built once, seeded). Higher
    // task counts split the same files into more, smaller tasks — the §8
    // mitigation — rather than re-rolling the skew.
    let total = 8.0 * GIB;
    let mut base = JobBuilder::new("hol", CostModel::spark_1_3())
        .read_disk(total, total / 5_000.0, total / 16.0)
        .map(1.0, 1.0, false)
        .collect();
    apply_input_skew(&mut base, 1.2, 7);
    println!(
        "  (largest file = {:.1}x the mean of 16 files)",
        input_skew_ratio(&base)
    );
    let file_sizes: Vec<(f64, dataflow::CpuWork)> = base.stages[0]
        .tasks
        .iter()
        .map(|t| (t.input.bytes(), t.cpu))
        .collect();
    for split in [1usize, 4, 16] {
        let tasks = 16 * split;
        let mut job = JobBuilder::new("hol", CostModel::spark_1_3())
            .read_disk(total, total / 5_000.0, total / tasks as f64)
            .map(1.0, 1.0, false)
            .collect();
        for (ti, task) in job.stages[0].tasks.iter_mut().enumerate() {
            let (bytes, cpu) = file_sizes[ti / split];
            if let dataflow::InputSpec::DiskBlock { bytes: b, .. } = &mut task.input {
                *b = bytes / split as f64;
            }
            task.cpu.deser = cpu.deser / split as f64;
            task.cpu.compute = cpu.compute / split as f64;
            task.cpu.ser = cpu.ser / split as f64;
        }
        let blocks = BlockMap::round_robin(tasks, 1, 2);
        let out = monotasks_core::run(
            &cluster,
            &[(job, blocks)],
            &monotasks_core::MonoConfig::default(),
        );
        let mut waits: Vec<f64> = out
            .records
            .iter()
            .filter(|r| r.purpose == monotasks_core::Purpose::ReadInput)
            .map(|r| r.queue_secs())
            .collect();
        waits.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = waits[waits.len() / 2];
        let max = waits.last().copied().unwrap_or(0.0);
        println!(
            "{:<18} {:>10.1} {:>22.2} {:>18.2}",
            tasks,
            out.jobs[0].duration_secs(),
            median,
            max
        );
    }
    println!("\nsmaller tasks shrink both the median and worst-case wait, as §8 argues");
}
