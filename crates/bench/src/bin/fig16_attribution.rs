//! Figure 16: attributing resource use to concurrent jobs.
//!
//! Paper: running the 10-value and 50-value sorts concurrently, estimating
//! each job's resource use the only way Spark can — scaling each executor's
//! total use by the job's slot occupancy — misattributes whenever the jobs'
//! resource profiles differ: median error 17%, 75th percentile 68%.
//! Monotask records attribute exactly: error consistently under 1%.

use cluster::{ClusterSpec, MachineSpec};
use dataflow::JobId;
use mt_bench::header;
use perfmodel::profile::attribute_by_records;
use perfmodel::strawman::{attribute_by_share, true_resource_use};
use workloads::{sort_job, SortConfig};

fn main() {
    header(
        "Figure 16",
        "per-job resource attribution with two concurrent sorts (10- and 50-value)",
        "Spark slot-share errors: median 17%, p75 68%; monotasks <1%",
    );
    // The HDD cluster: disk contention is what the slot-share estimate
    // cannot see (it assumes devices deliver sequential throughput).
    let cluster = ClusterSpec::new(20, MachineSpec::m2_4xlarge());
    let mk = |longs: usize, tag: &str| {
        let mut cfg = SortConfig::new(40.0, longs, 20, 2);
        cfg.map_tasks = Some(320);
        let (mut job, blocks) = sort_job(&cfg);
        job.name = tag.to_string();
        (job, blocks)
    };
    let (a, ba) = mk(10, "sort-10");
    let (b, bb) = mk(50, "sort-50");

    let mono = monotasks_core::run(
        &cluster,
        &[(a.clone(), ba.clone()), (b.clone(), bb.clone())],
        &monotasks_core::MonoConfig::default(),
    );
    let spark = sparklike::run(
        &cluster,
        &[(a.clone(), ba), (b.clone(), bb)],
        &sparklike::SparkConfig::default(),
    );

    let mut spark_errs: Vec<f64> = Vec::new();
    let mut mono_errs: Vec<f64> = Vec::new();
    for (ji, job) in [(0u32, &a), (1u32, &b)] {
        let truth = true_resource_use(job, 20);
        let mono_est = attribute_by_records(&mono.records, JobId(ji));
        let spark_est = attribute_by_share(
            JobId(ji),
            &spark.jobs[ji as usize],
            &spark.tasks,
            &spark.traces,
            &cluster,
        );
        let err = |t: f64, e: f64| (100.0 * (e - t) / t).abs();
        println!("job {} ({}):", ji, job.name);
        println!(
            "  truth:      cpu {:>10.0} core-s   disk {:>8.1} GB   net {:>8.1} GB",
            truth.cpu_secs,
            truth.disk_bytes / 1e9,
            truth.net_bytes / 1e9
        );
        println!(
            "  monotasks:  cpu err {:>5.1}%        disk err {:>5.1}%    net err {:>5.1}%",
            err(truth.cpu_secs, mono_est.cpu_secs),
            err(truth.disk_bytes, mono_est.disk_bytes),
            err(truth.net_bytes, mono_est.net_bytes)
        );
        println!(
            "  slot-share: cpu err {:>5.1}%        disk err {:>5.1}%    net err {:>5.1}%",
            err(truth.cpu_secs, spark_est.cpu_secs),
            err(truth.disk_bytes, spark_est.disk_bytes),
            err(truth.net_bytes, spark_est.net_bytes)
        );
        mono_errs.extend([
            err(truth.cpu_secs, mono_est.cpu_secs),
            err(truth.disk_bytes, mono_est.disk_bytes),
            err(truth.net_bytes, mono_est.net_bytes),
        ]);
        spark_errs.extend([
            err(truth.cpu_secs, spark_est.cpu_secs),
            err(truth.disk_bytes, spark_est.disk_bytes),
            err(truth.net_bytes, spark_est.net_bytes),
        ]);
    }
    let pct = cluster::trace::percentile;
    println!(
        "\nslot-share errors: median {:.0}%, p75 {:.0}%   (paper: 17%, 68%)",
        pct(&spark_errs, 50.0),
        pct(&spark_errs, 75.0)
    );
    println!(
        "monotask errors:   median {:.1}%, p75 {:.1}%   (paper: <1%)",
        pct(&mono_errs, 50.0),
        pct(&mono_errs, 75.0)
    );
}
