//! Figure 12: predicting the big data benchmark with one disk removed.
//!
//! Paper: monotask profiles from the 2-HDD cluster predict the 1-HDD
//! runtimes within 9% for every query except 3c, which is overestimated by
//! 28% (an evenly-bottlenecked shuffle stage where the model cannot see that
//! lower parallelism raises utilization).

use cluster::{ClusterSpec, DiskSpec, MachineSpec};
use mt_bench::{header, pct_err, run_mono};
use perfmodel::{predict_job, profile_stages, Scenario};
use workloads::{bdb_job, BdbQuery};

fn one_disk() -> MachineSpec {
    let mut m = MachineSpec::m2_4xlarge();
    m.disks = vec![DiskSpec::hdd()];
    m
}

fn main() {
    header(
        "Figure 12",
        "predict BDB runtimes with 1 HDD instead of 2 (monotasks model)",
        "errors <= 9% for all queries except 3c (28%)",
    );
    let two = ClusterSpec::new(5, MachineSpec::m2_4xlarge());
    let one = ClusterSpec::new(5, one_disk());
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>8}",
        "query", "2 disks (s)", "predicted 1", "actual 1 (s)", "err"
    );
    for q in BdbQuery::all() {
        let (job, blocks) = bdb_job(q, 5, 2);
        let base = run_mono(&two, job, blocks);
        let profiles = profile_stages(&base.records, &base.jobs);
        let predicted = predict_job(
            &profiles,
            base.jobs[0].duration_secs(),
            &Scenario::of_cluster(&two),
            &Scenario::of_cluster(&one),
        );
        let (job1, blocks1) = bdb_job(q, 5, 1);
        let actual = run_mono(&one, job1, blocks1);
        println!(
            "{:<6} {:>12.1} {:>12.1} {:>12.1} {:>7.1}%",
            q.label(),
            base.jobs[0].duration_secs(),
            predicted,
            actual.jobs[0].duration_secs(),
            pct_err(actual.jobs[0].duration_secs(), predicted)
        );
    }
}
