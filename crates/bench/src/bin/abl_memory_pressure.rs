//! Ablation: §3.5 memory regulation.
//!
//! "Monotasks schedulers could prioritize monotasks based on the amount of
//! remaining memory; e.g., the disk scheduler could prioritize disk write
//! monotasks over read monotasks when memory is contended, to clear data out
//! of memory." The paper leaves this unimplemented; this binary measures the
//! extension: sweeping the buffer watermark shows peak memory falling while
//! runtime stays close to the unregulated baseline.

use cluster::{ClusterSpec, MachineSpec};
use mt_bench::header;
use workloads::{sort_job, SortConfig};

fn main() {
    header(
        "Ablation: §3.5 memory regulation",
        "disk queues prefer writes when in-flight buffers exceed a watermark",
        "peak buffer use falls as the watermark tightens, at a throughput \
         cost: admission control trades memory for pipeline depth",
    );
    let cluster = ClusterSpec::new(20, MachineSpec::m2_4xlarge());
    // Few, large reduce tasks: each buffers its whole ~640 MB shuffle fetch
    // in memory before computing, so the number of concurrently-fetching
    // multitasks dominates peak memory — the §3.5 scenario.
    let mut cfg_wl = SortConfig::new(150.0, 25, 20, 2);
    cfg_wl.reduce_tasks = Some(240);
    let (job, blocks) = sort_job(&cfg_wl);
    println!(
        "{:<22} {:>10} {:>18}",
        "watermark", "total (s)", "peak buffers (MB)"
    );
    for limit in [None, Some(0.02), Some(0.005), Some(0.001)] {
        let cfg = monotasks_core::MonoConfig {
            memory_limit_fraction: limit,
            ..monotasks_core::MonoConfig::default()
        };
        let out = monotasks_core::run(&cluster, &[(job.clone(), blocks.clone())], &cfg);
        let peak = out.peak_buffered.iter().cloned().fold(0.0f64, f64::max);
        let label = match limit {
            None => "none (paper)".to_string(),
            Some(f) => format!("{:.1}% of RAM", f * 100.0),
        };
        println!(
            "{:<22} {:>10.1} {:>18.1}",
            label,
            out.jobs[0].duration_secs(),
            peak / 1e6
        );
    }
}
