//! Figure 14: bottleneck analysis — runtime with one resource infinitely
//! fast.
//!
//! Paper: replicating the NSDI'15 blocked-time analysis from monotask
//! runtimes alone, "CPU is the bottleneck for most queries, improving disk
//! speed could reduce runtime of some queries, and improving network speed
//! has little effect"; queries like 3c improve from multiple resources
//! because different stages have different bottlenecks.

use cluster::{ClusterSpec, MachineSpec};
use mt_bench::{header, run_mono};
use perfmodel::bottleneck::stage_bottlenecks;
use perfmodel::{optimized_resource_runtime, profile_stages, Scenario};
use simcore::ResourceKind;
use workloads::{bdb_job, BdbQuery};

fn main() {
    header(
        "Figure 14",
        "BDB runtime with an infinitely fast disk / network / CPU",
        "CPU bottlenecks most queries; disk helps some; network helps little",
    );
    let cluster = ClusterSpec::new(5, MachineSpec::m2_4xlarge());
    let scen = Scenario::of_cluster(&cluster);
    println!(
        "{:<6} {:>10} {:>11} {:>11} {:>11}   stage bottlenecks",
        "query", "actual (s)", "fast disk", "fast net", "fast cpu"
    );
    for q in BdbQuery::all() {
        let (job, blocks) = bdb_job(q, 5, 2);
        let out = run_mono(&cluster, job, blocks);
        let profiles = profile_stages(&out.records, &out.jobs);
        let actual = out.jobs[0].duration_secs();
        let fast = |r: ResourceKind| optimized_resource_runtime(&profiles, actual, &scen, r);
        let kinds: Vec<&str> = stage_bottlenecks(&profiles, &scen)
            .into_iter()
            .map(|k| k.name())
            .collect();
        println!(
            "{:<6} {:>10.1} {:>11.1} {:>11.1} {:>11.1}   {}",
            q.label(),
            actual,
            fast(ResourceKind::Disk),
            fast(ResourceKind::Network),
            fast(ResourceKind::Cpu),
            kinds.join(",")
        );
    }
}
