//! Ablation: round-robin vs FIFO disk queues (§3.3).
//!
//! The paper's queueing discussion: with FIFO disk queues, a backlog of
//! shuffle-write monotasks starves the next multitasks' reads, so CPU work
//! arrives in bursts and utilization collapses in alternating cycles.
//! Round-robin between reads and writes keeps a pipeline of monotasks
//! flowing to every resource.

use cluster::{ClusterSpec, MachineId, MachineSpec};
use mt_bench::{header, pct_diff};
use workloads::{sort_job, SortConfig};

fn main() {
    header(
        "Ablation: §3.3 queueing",
        "monotasks with round-robin vs FIFO disk queues (HDD sort)",
        "round-robin avoids read starvation behind write backlogs",
    );
    let cluster = ClusterSpec::new(20, MachineSpec::m2_4xlarge());
    let cfg = SortConfig::new(150.0, 4, 20, 2);
    let (job, blocks) = sort_job(&cfg);
    println!(
        "{:<14} {:>10} {:>12} {:>12}",
        "queueing", "total (s)", "map cpu-util", "reduce cpu"
    );
    let mut results = Vec::new();
    for rr in [true, false] {
        let mc = monotasks_core::MonoConfig {
            rr_disk_queues: rr,
            ..monotasks_core::MonoConfig::default()
        };
        let out = monotasks_core::run(&cluster, &[(job.clone(), blocks.clone())], &mc);
        let r = &out.jobs[0];
        let util = |si: usize| {
            let st = &r.stages[si];
            (0..20)
                .map(|m| out.traces.class_means(MachineId(m), st.start, st.end).cpu)
                .sum::<f64>()
                / 20.0
        };
        println!(
            "{:<14} {:>10.1} {:>11.1}% {:>11.1}%",
            if rr { "round-robin" } else { "fifo" },
            r.duration_secs(),
            util(0) * 100.0,
            util(1) * 100.0
        );
        results.push(r.duration_secs());
    }
    println!(
        "\nfifo vs round-robin: {:+.1}% runtime",
        pct_diff(results[0], results[1])
    );
}
