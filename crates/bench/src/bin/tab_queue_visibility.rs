//! §3.1's "visible contention": the bottleneck resource is the one with the
//! longest monotask queues — no profiler required.
//!
//! For three deliberately differently-bottlenecked jobs, print the mean
//! scheduler queue lengths per resource class alongside the model's
//! bottleneck verdict: they must agree.

use cluster::{ClusterSpec, MachineSpec};
use dataflow::{BlockMap, CostModel, JobBuilder, JobSpec};
use mt_bench::{header, run_mono};
use perfmodel::{profile_stages, Scenario};
use workloads::GIB;

fn mean_queues(out: &monotasks_core::MonoRunOutput) -> (f64, f64, f64) {
    let n = out.queue_trace.len().max(1) as f64;
    let mut cpu = 0.0;
    let mut disk = 0.0;
    let mut net = 0.0;
    for s in &out.queue_trace {
        cpu += s.cpu_queued as f64;
        disk += s.disk_queued.iter().sum::<usize>() as f64;
        net += s.net_queued as f64;
    }
    (cpu / n, disk / n, net / n)
}

fn main() {
    header(
        "§3.1 queue visibility",
        "scheduler queue lengths vs the model's bottleneck verdict",
        "contention is visible as the queue length for each resource",
    );
    let cluster = ClusterSpec::new(4, MachineSpec::m2_4xlarge());
    let total = 8.0 * GIB;
    let jobs: Vec<(&str, JobSpec)> = vec![
        (
            "cpu-bound",
            JobBuilder::new("cpu", CostModel::spark_1_3())
                .read_disk(total, total / 16.0, total / 128.0)
                .map(1.0, 1.0, true)
                .collect(),
        ),
        (
            "disk-bound",
            JobBuilder::new("disk", CostModel::spark_1_3())
                .read_disk(total, total / 50_000.0, total / 128.0)
                .map(1.0, 1.0, false)
                .write_disk(1.0),
        ),
        (
            "network-bound",
            JobBuilder::new("net", CostModel::spark_1_3())
                .read_memory(total, total / 50_000.0, 128, true)
                .map(1.0, 1.0, false)
                .shuffle(128, true)
                .map(1.0, 1.0, false)
                .write_memory(),
        ),
    ];
    println!(
        "{:<14} {:>9} {:>9} {:>9}   {:<18} model bottleneck",
        "job", "cpu q", "disk q", "net q", "longest queue"
    );
    for (label, job) in jobs {
        let blocks = BlockMap::round_robin(128, 4, 2);
        let out = run_mono(&cluster, job, blocks);
        let (cpu, disk, net) = mean_queues(&out);
        let longest = if cpu >= disk && cpu >= net {
            "cpu"
        } else if disk >= net {
            "disk"
        } else {
            "network"
        };
        let profiles = profile_stages(&out.records, &out.jobs);
        let scen = Scenario::of_cluster(&cluster);
        // The dominant stage's bottleneck (the stage with the longest ideal time).
        let bottleneck = profiles
            .iter()
            .map(|p| perfmodel::model::ideal_times(p, &scen))
            .max_by(|a, b| a.stage_time().partial_cmp(&b.stage_time()).expect("finite"))
            .map(|t| t.bottleneck().name())
            .unwrap_or("?");
        println!(
            "{:<14} {:>9.1} {:>9.1} {:>9.1}   {:<18} {}",
            label, cpu, disk, net, longest, bottleneck
        );
    }
}
