//! Ablation: the "+1" extra multitask in auto-concurrency (§3.4).
//!
//! The job scheduler assigns enough multitasks to fill every resource
//! scheduler "plus one additional monotask": without the spare, a round-robin
//! queue class can be skipped because it is momentarily empty while a
//! replacement multitask is being requested. We also sweep explicit override
//! values to show the auto target sits at the knee.

use cluster::{ClusterSpec, MachineSpec};
use mt_bench::header;
use workloads::{sort_job, SortConfig};

fn main() {
    header(
        "Ablation: §3.4 concurrency",
        "monotasks auto-concurrency (with/without +1) and overrides",
        "auto target = cores + disk slots + net outstanding + 1 sits at the knee",
    );
    let cluster = ClusterSpec::new(20, MachineSpec::m2_4xlarge());
    let cfg = SortConfig::new(150.0, 4, 20, 2);
    let (job, blocks) = sort_job(&cfg);
    let run_with = |mc: monotasks_core::MonoConfig| {
        monotasks_core::run(&cluster, &[(job.clone(), blocks.clone())], &mc).jobs[0].duration_secs()
    };
    let auto = run_with(monotasks_core::MonoConfig::default());
    let no_extra = monotasks_core::MonoConfig {
        extra_multitask: false,
        ..monotasks_core::MonoConfig::default()
    };
    let without = run_with(no_extra);
    println!("auto (cores+disks+net+1 = 15): {auto:>8.1} s");
    println!("auto without the +1 (14):      {without:>8.1} s");
    println!();
    println!("{:<22} {:>10}", "override", "total (s)");
    for conc in [2usize, 4, 8, 12, 15, 20, 30, 60] {
        let mc = monotasks_core::MonoConfig {
            concurrency_override: Some(conc),
            ..monotasks_core::MonoConfig::default()
        };
        println!(
            "{:<22} {:>10.1}",
            format!("{conc} multitasks"),
            run_with(mc)
        );
    }
}
