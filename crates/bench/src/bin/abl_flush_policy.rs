//! Ablation: buffer-cache vs flushed writes (§3.1 / §5.3 / §8).
//!
//! Monotasks "flush all writes to disk, to ensure that future disk monotasks
//! get dedicated use of the disk, and because the ability to measure the
//! disk write time is critical to performance clarity" — giving up the
//! buffer-cache advantage Spark enjoys on small-output jobs (query 1c), in
//! exchange for predictability. This binary quantifies the trade on both a
//! cache-friendly query and a write-heavy sort where deferred flushes come
//! back as contention.

use cluster::{ClusterSpec, MachineSpec};
use mt_bench::{header, run_mono};
use workloads::{bdb_job, sort_job, BdbQuery, SortConfig};

fn main() {
    header(
        "Ablation: write policy",
        "Spark buffer-cache vs forced-flush vs monotasks flushed writes",
        "cache wins when output fits and the job ends first; flushes win clarity",
    );
    // Query 1c: ETL-sized output, short job — the cache's best case.
    let cluster5 = ClusterSpec::new(5, MachineSpec::m2_4xlarge());
    let (q1c, q1c_blocks) = bdb_job(BdbQuery::Q1c, 5, 2);
    let cached = sparklike::run(
        &cluster5,
        &[(q1c.clone(), q1c_blocks.clone())],
        &sparklike::SparkConfig::default(),
    );
    let wt = sparklike::SparkConfig {
        write_through: true,
        ..sparklike::SparkConfig::default()
    };
    let synced = sparklike::run(&cluster5, &[(q1c.clone(), q1c_blocks.clone())], &wt);
    let mono = run_mono(&cluster5, q1c, q1c_blocks);
    println!("query 1c (write-heavy scan):");
    println!(
        "  spark, cached writes:   {:>8.1} s",
        cached.jobs[0].duration_secs()
    );
    println!(
        "  spark, forced flush:    {:>8.1} s",
        synced.jobs[0].duration_secs()
    );
    println!(
        "  monotasks (flushed):    {:>8.1} s",
        mono.jobs[0].duration_secs()
    );

    // The HDD sort: deferred flushes contend with later reads.
    let cluster20 = ClusterSpec::new(20, MachineSpec::m2_4xlarge());
    let (sort, sort_blocks) = sort_job(&SortConfig::new(150.0, 4, 20, 2));
    let cached = sparklike::run(
        &cluster20,
        &[(sort.clone(), sort_blocks.clone())],
        &sparklike::SparkConfig::default(),
    );
    let synced = sparklike::run(&cluster20, &[(sort.clone(), sort_blocks.clone())], &wt);
    let mono = run_mono(&cluster20, sort, sort_blocks);
    println!("\n150 GiB HDD sort (write volume exceeds cache thresholds):");
    println!(
        "  spark, cached writes:   {:>8.1} s",
        cached.jobs[0].duration_secs()
    );
    println!(
        "  spark, forced flush:    {:>8.1} s",
        synced.jobs[0].duration_secs()
    );
    println!(
        "  monotasks (flushed):    {:>8.1} s",
        mono.jobs[0].duration_secs()
    );
}
