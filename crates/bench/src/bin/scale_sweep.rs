//! Control-plane scaling sweep: the sort workload at 5/20/50/100 machines.
//!
//! The paper's evaluation tops out at 20 workers; this sweep tracks whether
//! the *simulator's* control plane (fluid reallocation, completion scans)
//! stays cheap enough to model 100-machine clusters. Weak scaling: input
//! grows with the cluster so per-machine work is constant and any wall-clock
//! blow-up is allocator overhead, not workload size.
//!
//! Emits `BENCH_PR1.json` in the current directory with one record per scale
//! point (simulated makespan, host wall-clock, events fired, reallocations,
//! allocator wall-time) so future PRs can diff the perf trajectory.

use std::time::Instant;

use cluster::{ClusterSpec, MachineSpec};
use mt_bench::header;
use workloads::{sort_job, SortConfig};

/// GiB of sort input per machine (weak scaling).
const GIB_PER_MACHINE: f64 = 2.0;

struct Point {
    machines: usize,
    tasks: usize,
    makespan_s: f64,
    wall_s: f64,
    events: u64,
    reallocs: u64,
    alloc_s: f64,
}

fn run_point(machines: usize) -> Point {
    let cluster = ClusterSpec::new(machines, MachineSpec::m2_4xlarge());
    let cfg = SortConfig::new(GIB_PER_MACHINE * machines as f64, 10, machines, 2);
    let (job, blocks) = sort_job(&cfg);
    let tasks = job.stages.iter().map(|s| s.tasks.len()).sum();
    // The full-duplex fabric holds one flow per live transfer (≈M² in an
    // all-to-all shuffle wave) — exactly the structure this sweep stresses.
    let mono_cfg = monotasks_core::MonoConfig {
        full_duplex_network: true,
        ..monotasks_core::MonoConfig::default()
    };
    let start = Instant::now();
    let out = monotasks_core::run(&cluster, &[(job, blocks)], &mono_cfg);
    let wall_s = start.elapsed().as_secs_f64();
    Point {
        machines,
        tasks,
        makespan_s: out.makespan.as_secs_f64(),
        wall_s,
        events: out.stats.events,
        reallocs: out.stats.reallocs,
        alloc_s: out.stats.alloc_secs(),
    }
}

fn main() {
    header(
        "scale_sweep",
        "sort at 5/20/50/100 machines, full-duplex fabric, weak scaling",
        "control plane stays tractable at 100 machines (beyond the paper's 20)",
    );
    println!(
        "{:>9} {:>7} {:>11} {:>9} {:>10} {:>10} {:>9}",
        "machines", "tasks", "makespan(s)", "wall(s)", "events", "reallocs", "alloc(s)"
    );
    let mut points = Vec::new();
    for &m in &[5usize, 20, 50, 100] {
        let p = run_point(m);
        println!(
            "{:>9} {:>7} {:>11.1} {:>9.2} {:>10} {:>10} {:>9.2}",
            p.machines, p.tasks, p.makespan_s, p.wall_s, p.events, p.reallocs, p.alloc_s
        );
        points.push(p);
    }
    let mut json = String::from("{\n  \"bench\": \"scale_sweep\",\n  \"workload\": \"sort\",\n");
    json.push_str(&format!(
        "  \"gib_per_machine\": {GIB_PER_MACHINE},\n  \"points\": [\n"
    ));
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"machines\": {}, \"tasks\": {}, \"makespan_s\": {:.3}, \
             \"wall_s\": {:.3}, \"events\": {}, \"reallocs\": {}, \"alloc_s\": {:.3}}}{}\n",
            p.machines,
            p.tasks,
            p.makespan_s,
            p.wall_s,
            p.events,
            p.reallocs,
            p.alloc_s,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_PR1.json", &json).expect("write BENCH_PR1.json");
    println!("\nwrote BENCH_PR1.json");
}
