//! Control-plane scaling sweep: the sort workload at 5–400 machines.
//!
//! The paper's evaluation tops out at 20 workers; this sweep tracks whether
//! the *simulator's* control plane (fluid reallocation, lazy drain,
//! completion collection) stays cheap enough to model clusters well beyond
//! that. Weak scaling: input grows with the cluster so per-machine work is
//! constant and any wall-clock blow-up is allocator overhead, not workload
//! size.
//!
//! Emits one JSON record per scale point (simulated makespan, host
//! wall-clock, events fired, reallocations, and per-phase wall-clock
//! attribution: alloc / drain / completion / executor control — performance
//! clarity applied to the simulator itself).
//!
//! Usage:
//!   scale_sweep [--out PATH] [--points 5,20,50]
//!               [--check BASELINE.json --max-factor 2.0]
//!
//! The output path defaults to `$SCALE_SWEEP_OUT` or `BENCH_PR2.json`, so
//! each PR appends a new record to the perf trajectory instead of silently
//! overwriting the previous one. `--check` compares the measured wall times
//! against a committed baseline and exits non-zero on a >`max-factor`
//! regression at any shared point (the CI wall-clock budget guard).

use std::time::Instant;

use cluster::{ClusterSpec, MachineSpec};
use mt_bench::header;
use workloads::{sort_job, SortConfig};

/// GiB of sort input per machine (weak scaling).
const GIB_PER_MACHINE: f64 = 2.0;

const DEFAULT_POINTS: &[usize] = &[5, 20, 50, 100, 200, 400];

struct Point {
    machines: usize,
    tasks: usize,
    makespan_s: f64,
    wall_s: f64,
    events: u64,
    reallocs: u64,
    alloc_s: f64,
    drain_s: f64,
    completion_s: f64,
    control_s: f64,
}

fn run_point(machines: usize) -> Point {
    let cluster = ClusterSpec::new(machines, MachineSpec::m2_4xlarge());
    let cfg = SortConfig::new(GIB_PER_MACHINE * machines as f64, 10, machines, 2);
    let (job, blocks) = sort_job(&cfg);
    let tasks = job.stages.iter().map(|s| s.tasks.len()).sum();
    // The full-duplex fabric holds one flow per live transfer (≈M² in an
    // all-to-all shuffle wave) — exactly the structure this sweep stresses.
    // Traces are off: at hundreds of machines the per-machine-per-event
    // samples would dominate memory without affecting simulation results.
    let mono_cfg = monotasks_core::MonoConfig {
        full_duplex_network: true,
        collect_traces: false,
        ..monotasks_core::MonoConfig::default()
    };
    let start = Instant::now();
    let out = monotasks_core::run(&cluster, &[(job, blocks)], &mono_cfg);
    let wall_s = start.elapsed().as_secs_f64();
    Point {
        machines,
        tasks,
        makespan_s: out.makespan.as_secs_f64(),
        wall_s,
        events: out.stats.events,
        reallocs: out.stats.reallocs,
        alloc_s: out.stats.alloc_secs(),
        drain_s: out.stats.drain_secs(),
        completion_s: out.stats.completion_secs(),
        control_s: out.stats.control_secs(),
    }
}

struct Args {
    out: String,
    points: Vec<usize>,
    check: Option<String>,
    max_factor: f64,
}

fn parse_args() -> Args {
    let default_out =
        std::env::var("SCALE_SWEEP_OUT").unwrap_or_else(|_| "BENCH_PR2.json".to_string());
    let mut args = Args {
        out: default_out,
        points: DEFAULT_POINTS.to_vec(),
        check: None,
        max_factor: 2.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match a.as_str() {
            "--out" => args.out = value("--out"),
            "--points" => {
                args.points = value("--points")
                    .split(',')
                    .map(|s| s.trim().parse().expect("bad --points entry"))
                    .collect();
            }
            "--check" => args.check = Some(value("--check")),
            "--max-factor" => {
                args.max_factor = value("--max-factor").parse().expect("bad --max-factor")
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    args
}

/// Pulls `(machines, wall_s)` pairs out of a sweep JSON file without a JSON
/// dependency: each point record is one line with known key order.
fn baseline_walls(json: &str) -> Vec<(usize, f64)> {
    let field = |line: &str, key: &str| -> Option<f64> {
        let rest = &line[line.find(key)? + key.len()..];
        let rest = rest.trim_start_matches([':', ' ']);
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    };
    json.lines()
        .filter_map(|line| {
            let m = field(line, "\"machines\"")? as usize;
            let w = field(line, "\"wall_s\"")?;
            Some((m, w))
        })
        .collect()
}

fn main() {
    let args = parse_args();
    header(
        "scale_sweep",
        "sort at 5-400 machines, full-duplex fabric, weak scaling",
        "per-event control-plane cost proportional to what the event touches",
    );
    println!(
        "{:>9} {:>7} {:>11} {:>9} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "machines",
        "tasks",
        "makespan(s)",
        "wall(s)",
        "events",
        "reallocs",
        "alloc(s)",
        "drain(s)",
        "compl(s)",
        "ctrl(s)"
    );
    let mut points = Vec::new();
    for &m in &args.points {
        let p = run_point(m);
        println!(
            "{:>9} {:>7} {:>11.1} {:>9.2} {:>10} {:>10} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            p.machines,
            p.tasks,
            p.makespan_s,
            p.wall_s,
            p.events,
            p.reallocs,
            p.alloc_s,
            p.drain_s,
            p.completion_s,
            p.control_s
        );
        points.push(p);
    }
    if let Some(baseline_path) = &args.check {
        let baseline = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("read {baseline_path}: {e}"));
        let walls = baseline_walls(&baseline);
        let mut failed = false;
        for p in &points {
            let Some(&(_, base)) = walls.iter().find(|(m, _)| *m == p.machines) else {
                println!("check: {} machines not in baseline, skipping", p.machines);
                continue;
            };
            // Tiny points measure scheduler noise more than allocator cost;
            // a floor keeps the guard meaningful on shared CI runners.
            let budget = (base * args.max_factor).max(0.25);
            let ok = p.wall_s <= budget;
            println!(
                "check: {} machines wall {:.3}s vs baseline {:.3}s (budget {:.3}s) {}",
                p.machines,
                p.wall_s,
                base,
                budget,
                if ok { "OK" } else { "REGRESSED" }
            );
            failed |= !ok;
        }
        if failed {
            eprintln!("scale_sweep --check: wall-clock budget exceeded");
            std::process::exit(1);
        }
        return; // check mode never rewrites the committed record
    }
    let mut json = String::from("{\n  \"bench\": \"scale_sweep\",\n  \"workload\": \"sort\",\n");
    json.push_str(&format!(
        "  \"gib_per_machine\": {GIB_PER_MACHINE},\n  \"points\": [\n"
    ));
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"machines\": {}, \"tasks\": {}, \"makespan_s\": {:.3}, \
             \"wall_s\": {:.3}, \"events\": {}, \"reallocs\": {}, \"alloc_s\": {:.3}, \
             \"drain_s\": {:.3}, \"completion_s\": {:.3}, \"control_s\": {:.3}}}{}\n",
            p.machines,
            p.tasks,
            p.makespan_s,
            p.wall_s,
            p.events,
            p.reallocs,
            p.alloc_s,
            p.drain_s,
            p.completion_s,
            p.control_s,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&args.out, &json).unwrap_or_else(|e| panic!("write {}: {e}", args.out));
    println!("\nwrote {}", args.out);
}
