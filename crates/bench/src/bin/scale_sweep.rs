//! Control-plane scaling sweep: the sort (or BDB) workload at 5–1000+
//! machines, with an optional ε/Δ approximate-allocator matrix.
//!
//! The paper's evaluation tops out at 20 workers; this sweep tracks whether
//! the *simulator's* control plane (fluid reallocation, lazy drain,
//! completion collection) stays cheap enough to model clusters well beyond
//! that. Weak scaling: sort input grows with the cluster so per-machine work
//! is constant and any wall-clock blow-up is allocator overhead, not
//! workload size. `--workload bdb` runs the ten big-data-benchmark queries
//! instead — many small stages (churny control plane) rather than one big
//! shuffle (churny fabric).
//!
//! Emits one JSON record per (machines, ε, Δ, templates) point: simulated
//! makespan, host wall-clock, events fired, reallocations, per-phase
//! wall-clock attribution (fabric alloc / machine alloc / drain / completion
//! / executor control / template build / instantiate — performance clarity
//! applied to the simulator itself), template hit/miss/invalidation counts
//! with a nested per-stage breakdown, and, when the same run also measured
//! the exact allocator at that scale, the makespan drift the approximation
//! introduced.
//!
//! Usage:
//!   scale_sweep [--out PATH] [--points 5,20,50] [--workload sort|bdb]
//!               [--epsilon 0,0.01] [--quantum-ms 0,1] [--templates on,off]
//!               [--racks SIZE] [--oversub F] [--shards 1,8]
//!               [--tasks-per-machine N]
//!               [--check BASELINE.json --max-factor 2.0 --max-drift PCT]
//!               [--max-control SECS]
//!
//! `--racks SIZE` switches the fabric to the rack-sharded hierarchy:
//! machines are grouped into racks of SIZE with aggregation bandwidth
//! `SIZE × NIC / oversub` (`--oversub`, default 4). `--shards` lists worker
//! thread counts to measure; the sweep *asserts* that every shard count
//! produces the bit-identical simulated makespan at each point — shards
//! trade wall-clock only, never results. `--tasks-per-machine N` overrides
//! the sort's one-map-per-128-MiB sizing (32 tasks/machine) with N coarser
//! tasks per machine — shuffle bookkeeping is Θ(maps × reduces), so the
//! 10k-machine point needs this to fit in host memory.
//!
//! The output path defaults to `$SCALE_SWEEP_OUT` or `BENCH_PR4.json`, so
//! each PR appends a new record to the perf trajectory instead of silently
//! overwriting the previous one. `--check` compares the measured wall times
//! against a committed baseline (matching on workload, machines, ε and Δ —
//! preferring the same templates flag, falling back to any) and exits
//! non-zero on a >`max-factor` regression at any shared point. Because
//! execution templates are a pure control-plane optimization, `--check` also
//! requires each point's simulated makespan to equal the baseline's to
//! within print precision — templates changing a makespan is a bug, not
//! drift. `--max-drift` additionally compares each approximate point's
//! simulated makespan against the committed *exact* makespan at the same
//! scale — makespans are bit-deterministic across hosts, so this doubles as
//! the CI drift ceiling for the ε/Δ mode. `--max-control` caps the total
//! scheduler-side wall time (control + template build + instantiate) of
//! every measured point — the CI budget that keeps the control plane flat as
//! the cluster grows.

use std::time::Instant;

use cluster::{ClusterSpec, MachineSpec};
use dataflow::{BlockMap, JobSpec};
use mt_bench::header;
use workloads::{bdb_job, sort_job, BdbQuery, SortConfig};

/// GiB of sort input per machine (weak scaling).
const GIB_PER_MACHINE: f64 = 2.0;

const DEFAULT_POINTS: &[usize] = &[5, 20, 50, 100, 200, 400];

#[derive(Clone, Copy, PartialEq, Eq)]
enum Workload {
    Sort,
    Bdb,
}

impl Workload {
    fn as_str(self) -> &'static str {
        match self {
            Workload::Sort => "sort",
            Workload::Bdb => "bdb",
        }
    }

    fn jobs(self, machines: usize, tasks_per_machine: usize) -> Vec<(JobSpec, BlockMap)> {
        match self {
            Workload::Sort => {
                let mut cfg = SortConfig::new(GIB_PER_MACHINE * machines as f64, 10, machines, 2);
                // Shuffle bookkeeping is Θ(maps × reduces); the default
                // one-task-per-128-MiB sizing (32 tasks/machine weak-scaled)
                // needs ~450 GB of host RAM at 10k machines, so the largest
                // points trade task granularity for feasibility explicitly.
                if tasks_per_machine > 0 {
                    let half = (machines * tasks_per_machine / 2).max(1);
                    cfg.map_tasks = Some(half);
                    cfg.reduce_tasks = Some(half);
                }
                vec![sort_job(&cfg)]
            }
            // All ten queries in one run: a stream of short stages over
            // fixed-size tables, stressing scheduler/stage churn instead of
            // one giant shuffle wave.
            Workload::Bdb => BdbQuery::all()
                .iter()
                .map(|&q| bdb_job(q, machines, 2))
                .collect(),
        }
    }
}

/// Control-plane attribution for one executed stage of one job.
struct StageCtl {
    job: String,
    stage: u32,
    tasks_started: u64,
    build_s: f64,
    instantiate_s: f64,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

struct Point {
    workload: Workload,
    machines: usize,
    tasks: usize,
    epsilon: f64,
    quantum_ms: f64,
    templates: bool,
    /// Machines per rack (0 = flat single-level fabric).
    racks: usize,
    /// Fabric worker threads (1 = everything on the simulation thread).
    shards: usize,
    makespan_s: f64,
    wall_s: f64,
    events: u64,
    reallocs: u64,
    alloc_s: f64,
    machine_alloc_s: f64,
    drain_s: f64,
    completion_s: f64,
    control_s: f64,
    template_build_s: f64,
    instantiate_s: f64,
    template_hits: u64,
    template_misses: u64,
    template_invalidations: u64,
    /// Per-stage control attribution (nested under the point in the JSON).
    stages: Vec<StageCtl>,
    /// Makespan drift vs the exact allocator at the same point, when this
    /// run measured it too (ε = Δ = 0 points have none by definition).
    drift_pct: Option<f64>,
}

#[allow(clippy::too_many_arguments)]
fn run_point(
    workload: Workload,
    machines: usize,
    epsilon: f64,
    quantum_ms: f64,
    templates: bool,
    racks: usize,
    oversub: f64,
    shards: usize,
    tasks_per_machine: usize,
) -> Point {
    let cluster = if racks > 0 {
        ClusterSpec::with_racks(machines, MachineSpec::m2_4xlarge(), racks, oversub)
    } else {
        ClusterSpec::new(machines, MachineSpec::m2_4xlarge())
    };
    let jobs = workload.jobs(machines, tasks_per_machine);
    let tasks = jobs
        .iter()
        .flat_map(|(job, _)| job.stages.iter())
        .map(|s| s.tasks.len())
        .sum();
    // The full-duplex fabric holds one flow per live transfer (≈M² in an
    // all-to-all shuffle wave) — exactly the structure this sweep stresses.
    // Traces are off: at hundreds of machines the per-machine-per-event
    // samples would dominate memory without affecting simulation results.
    let mono_cfg = monotasks_core::MonoConfig {
        full_duplex_network: true,
        collect_traces: false,
        fabric_epsilon: epsilon,
        fabric_quantum_secs: quantum_ms / 1e3,
        execution_templates: templates,
        fabric_shards: shards,
        ..monotasks_core::MonoConfig::default()
    };
    let start = Instant::now();
    let out = monotasks_core::run(&cluster, &jobs, &mono_cfg);
    let wall_s = start.elapsed().as_secs_f64();
    let stages = out
        .jobs
        .iter()
        .flat_map(|j| {
            j.stages.iter().map(|s| StageCtl {
                job: j.name.clone(),
                stage: s.stage.0,
                tasks_started: s.control.tasks_started,
                build_s: s.control.build_secs(),
                instantiate_s: s.control.instantiate_secs(),
                hits: s.control.template_hits,
                misses: s.control.template_misses,
                invalidations: s.control.template_invalidations,
            })
        })
        .collect();
    Point {
        workload,
        machines,
        tasks,
        epsilon,
        quantum_ms,
        templates,
        racks,
        shards,
        makespan_s: out.makespan.as_secs_f64(),
        wall_s,
        events: out.stats.events,
        reallocs: out.stats.reallocs,
        alloc_s: out.stats.alloc_secs(),
        machine_alloc_s: out.stats.machine_alloc_secs(),
        drain_s: out.stats.drain_secs(),
        completion_s: out.stats.completion_secs(),
        control_s: out.stats.control_secs(),
        template_build_s: out.stats.template_build_secs(),
        instantiate_s: out.stats.instantiate_secs(),
        template_hits: out.stats.template_hits,
        template_misses: out.stats.template_misses,
        template_invalidations: out.stats.template_invalidations,
        stages,
        drift_pct: None,
    }
}

struct Args {
    out: String,
    points: Vec<usize>,
    workload: Workload,
    epsilons: Vec<f64>,
    quantums_ms: Vec<f64>,
    templates: Vec<bool>,
    /// Machines per rack (0 = flat fabric, the default).
    racks: usize,
    /// Rack core oversubscription factor (agg = rack_size × NIC / oversub).
    oversub: f64,
    /// Fabric worker-thread counts to measure per point.
    shards: Vec<usize>,
    /// Sort tasks per machine (0 = one map per 128 MiB block, the default).
    tasks_per_machine: usize,
    check: Option<String>,
    max_factor: f64,
    max_drift: Option<f64>,
    max_control: Option<f64>,
}

fn parse_args() -> Args {
    let default_out =
        std::env::var("SCALE_SWEEP_OUT").unwrap_or_else(|_| "BENCH_PR4.json".to_string());
    let mut args = Args {
        out: default_out,
        points: DEFAULT_POINTS.to_vec(),
        workload: Workload::Sort,
        epsilons: vec![0.0],
        quantums_ms: vec![0.0],
        templates: vec![true],
        racks: 0,
        oversub: 4.0,
        shards: vec![1],
        tasks_per_machine: 0,
        check: None,
        max_factor: 2.0,
        max_drift: None,
        max_control: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match a.as_str() {
            "--out" => args.out = value("--out"),
            "--points" => {
                args.points = value("--points")
                    .split(',')
                    .map(|s| s.trim().parse().expect("bad --points entry"))
                    .collect();
            }
            "--workload" => {
                args.workload = match value("--workload").as_str() {
                    "sort" => Workload::Sort,
                    "bdb" => Workload::Bdb,
                    other => panic!("unknown workload: {other}"),
                };
            }
            "--epsilon" => {
                args.epsilons = value("--epsilon")
                    .split(',')
                    .map(|s| s.trim().parse().expect("bad --epsilon entry"))
                    .collect();
            }
            "--quantum-ms" => {
                args.quantums_ms = value("--quantum-ms")
                    .split(',')
                    .map(|s| s.trim().parse().expect("bad --quantum-ms entry"))
                    .collect();
            }
            "--templates" => {
                args.templates = value("--templates")
                    .split(',')
                    .map(|s| match s.trim() {
                        "on" | "true" => true,
                        "off" | "false" => false,
                        other => panic!("bad --templates entry: {other}"),
                    })
                    .collect();
            }
            "--racks" => args.racks = value("--racks").parse().expect("bad --racks"),
            "--oversub" => args.oversub = value("--oversub").parse().expect("bad --oversub"),
            "--shards" => {
                args.shards = value("--shards")
                    .split(',')
                    .map(|s| s.trim().parse().expect("bad --shards entry"))
                    .collect();
            }
            "--tasks-per-machine" => {
                args.tasks_per_machine = value("--tasks-per-machine")
                    .parse()
                    .expect("bad --tasks-per-machine")
            }
            "--check" => args.check = Some(value("--check")),
            "--max-factor" => {
                args.max_factor = value("--max-factor").parse().expect("bad --max-factor")
            }
            "--max-drift" => {
                args.max_drift = Some(value("--max-drift").parse().expect("bad --max-drift"))
            }
            "--max-control" => {
                args.max_control = Some(value("--max-control").parse().expect("bad --max-control"))
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    args
}

/// One point record parsed back out of a committed sweep JSON file.
struct BasePoint {
    workload: String,
    machines: usize,
    epsilon: f64,
    quantum_ms: f64,
    templates: bool,
    /// Machines per rack (0 for flat-fabric records, the pre-PR9 default).
    racks: usize,
    /// Fabric worker threads (1 for pre-PR9 records).
    shards: usize,
    wall_s: f64,
    makespan_s: f64,
}

/// Pulls point records out of a sweep JSON file without a JSON dependency:
/// each point's scalar fields are one line with known keys (the nested
/// per-stage lines carry none of them and fall through the filter). Records
/// predating the ε/Δ matrix (e.g. BENCH_PR2.json) default to the exact sort
/// allocator; records predating the templates flag were measured on the
/// untemplated path, which templated runs reproduce bit-for-bit, so they
/// default to `templates: true` and stay comparable.
fn baseline_points(json: &str) -> Vec<BasePoint> {
    let field = |line: &str, key: &str| -> Option<f64> {
        let rest = &line[line.find(key)? + key.len()..];
        let rest = rest.trim_start_matches([':', ' ']);
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    };
    let str_field = |line: &str, key: &str| -> Option<String> {
        let rest = &line[line.find(key)? + key.len()..];
        let rest = rest.trim_start_matches([':', ' ', '"']);
        Some(rest[..rest.find('"')?].to_string())
    };
    json.lines()
        .filter_map(|line| {
            let machines = field(line, "\"machines\"")? as usize;
            let wall_s = field(line, "\"wall_s\"")?;
            let makespan_s = field(line, "\"makespan_s\"")?;
            Some(BasePoint {
                workload: str_field(line, "\"workload\"").unwrap_or_else(|| "sort".into()),
                machines,
                epsilon: field(line, "\"epsilon\"").unwrap_or(0.0),
                quantum_ms: field(line, "\"quantum_ms\"").unwrap_or(0.0),
                templates: !line.contains("\"templates\": false"),
                racks: field(line, "\"racks\"").unwrap_or(0.0) as usize,
                shards: field(line, "\"shards\"").unwrap_or(1.0) as usize,
                wall_s,
                makespan_s,
            })
        })
        .collect()
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 + a.abs() * 1e-6
}

fn main() {
    let args = parse_args();
    header(
        "scale_sweep",
        "sort/bdb at 5-1000 machines, full-duplex fabric, weak scaling",
        "per-event control-plane cost proportional to what the event touches",
    );
    println!(
        "{:>9} {:>7} {:>6} {:>5} {:>4} {:>5} {:>6} {:>11} {:>9} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>6} {:>8}",
        "machines",
        "tasks",
        "eps",
        "dt_ms",
        "tmpl",
        "racks",
        "shards",
        "makespan(s)",
        "wall(s)",
        "events",
        "reallocs",
        "alloc(s)",
        "mach(s)",
        "drain(s)",
        "compl(s)",
        "ctrl(s)",
        "build(s)",
        "inst(s)",
        "hit%",
        "drift%"
    );
    let mut points: Vec<Point> = Vec::new();
    for &m in &args.points {
        for &eps in &args.epsilons {
            for &q in &args.quantums_ms {
                for &tmpl in &args.templates {
                    for &shards in &args.shards {
                        let mut p = run_point(
                            args.workload,
                            m,
                            eps,
                            q,
                            tmpl,
                            args.racks,
                            args.oversub,
                            shards,
                            args.tasks_per_machine,
                        );
                        // Shard-count invariance is a hard correctness claim,
                        // not a budget: every shard count at the same config
                        // must produce the bit-identical simulated makespan.
                        if let Some(first) = points.iter().find(|e| {
                            e.machines == m
                                && e.epsilon == eps
                                && e.quantum_ms == q
                                && e.templates == tmpl
                                && e.racks == args.racks
                        }) {
                            assert!(
                                first.makespan_s.to_bits() == p.makespan_s.to_bits(),
                                "shard-count invariance violated at {m} machines: \
                                 {} shards -> {}s, {shards} shards -> {}s",
                                first.shards,
                                first.makespan_s,
                                p.makespan_s
                            );
                        }
                        // Drift vs the exact combo measured earlier in this
                        // run (the combos iterate ε then Δ, so list 0 first
                        // to get drift columns for the rest of the matrix).
                        if eps > 0.0 || q > 0.0 {
                            p.drift_pct = points
                                .iter()
                                .find(|e| {
                                    e.machines == m
                                        && e.epsilon == 0.0
                                        && e.quantum_ms == 0.0
                                        && e.templates == tmpl
                                        && e.racks == args.racks
                                })
                                .map(|e| (p.makespan_s - e.makespan_s) / e.makespan_s * 100.0);
                        }
                        let looked_up = p.template_hits + p.template_misses;
                        println!(
                            "{:>9} {:>7} {:>6} {:>5} {:>4} {:>5} {:>6} {:>11.1} {:>9.2} {:>10} {:>10} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>6} {:>8}",
                            p.machines,
                            p.tasks,
                            p.epsilon,
                            p.quantum_ms,
                            if p.templates { "on" } else { "off" },
                            p.racks,
                            p.shards,
                            p.makespan_s,
                            p.wall_s,
                            p.events,
                            p.reallocs,
                            p.alloc_s,
                            p.machine_alloc_s,
                            p.drain_s,
                            p.completion_s,
                            p.control_s,
                            p.template_build_s,
                            p.instantiate_s,
                            if looked_up > 0 {
                                format!("{:.1}", p.template_hits as f64 / looked_up as f64 * 100.0)
                            } else {
                                "-".into()
                            },
                            p.drift_pct
                                .map(|d| format!("{d:+.3}"))
                                .unwrap_or_else(|| "-".into()),
                        );
                        points.push(p);
                    }
                }
            }
        }
    }
    let mut failed = false;
    // The control-plane budget applies to every measured point, baseline or
    // not: total scheduler-side wall time must stay under the ceiling.
    if let Some(max_control) = args.max_control {
        for p in &points {
            let total = p.control_s + p.template_build_s + p.instantiate_s;
            let ok = total <= max_control;
            println!(
                "check: {} machines (eps={}, dt={}ms, tmpl={}) control {:.3}s \
                 (ctrl {:.3} + build {:.3} + inst {:.3}) ceiling {:.3}s {}",
                p.machines,
                p.epsilon,
                p.quantum_ms,
                if p.templates { "on" } else { "off" },
                total,
                p.control_s,
                p.template_build_s,
                p.instantiate_s,
                max_control,
                if ok { "OK" } else { "OVER BUDGET" }
            );
            failed |= !ok;
        }
    }
    if let Some(baseline_path) = &args.check {
        let baseline = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("read {baseline_path}: {e}"));
        let base = baseline_points(&baseline);
        for p in &points {
            let same_cfg = |b: &&BasePoint| {
                b.workload == p.workload.as_str()
                    && b.machines == p.machines
                    && close(b.epsilon, p.epsilon)
                    && close(b.quantum_ms, p.quantum_ms)
                    && b.racks == p.racks
            };
            // Prefer the baseline point measured with the same templates
            // flag and shard count; fall back to any matching config —
            // makespans must agree either way (templates are a pure
            // control-plane optimization and shard counts are proven
            // result-invariant above), and wall budgets stay meaningful.
            let b = base
                .iter()
                .find(|b| same_cfg(b) && b.templates == p.templates && b.shards == p.shards)
                .or_else(|| {
                    base.iter()
                        .find(|b| same_cfg(b) && b.templates == p.templates)
                })
                .or_else(|| base.iter().find(same_cfg));
            let Some(b) = b else {
                println!(
                    "check: {} machines (eps={}, dt={}ms) not in baseline, skipping",
                    p.machines, p.epsilon, p.quantum_ms
                );
                continue;
            };
            // Tiny points measure scheduler noise more than allocator cost;
            // a floor keeps the guard meaningful on shared CI runners.
            let budget = (b.wall_s * args.max_factor).max(0.25);
            let ok = p.wall_s <= budget;
            println!(
                "check: {} machines (eps={}, dt={}ms) wall {:.3}s vs baseline {:.3}s (budget {:.3}s) {}",
                p.machines,
                p.epsilon,
                p.quantum_ms,
                p.wall_s,
                b.wall_s,
                budget,
                if ok { "OK" } else { "REGRESSED" }
            );
            failed |= !ok;
            // Simulated makespans are deterministic and templates are a pure
            // optimization: any divergence from the committed makespan at
            // the same config is a behavior change, not measurement noise
            // (tolerance covers the baseline's 3-decimal print precision).
            let ms_ok = (p.makespan_s - b.makespan_s).abs() <= 2e-3;
            println!(
                "check: {} machines (eps={}, dt={}ms) makespan {:.3}s vs baseline {:.3}s {}",
                p.machines,
                p.epsilon,
                p.quantum_ms,
                p.makespan_s,
                b.makespan_s,
                if ms_ok { "OK" } else { "MISMATCH" }
            );
            failed |= !ms_ok;
            // Simulated makespans are bit-deterministic across hosts, so an
            // approximate point can be held to a drift ceiling against the
            // committed exact makespan at the same scale.
            if let Some(max_drift) = args.max_drift {
                if p.epsilon > 0.0 || p.quantum_ms > 0.0 {
                    let exact = base.iter().find(|b| {
                        b.workload == p.workload.as_str()
                            && b.machines == p.machines
                            && b.epsilon == 0.0
                            && b.quantum_ms == 0.0
                            && b.racks == p.racks
                    });
                    match exact {
                        Some(e) => {
                            let drift = (p.makespan_s - e.makespan_s) / e.makespan_s * 100.0;
                            let ok = drift.abs() <= max_drift;
                            println!(
                                "check: {} machines (eps={}, dt={}ms) makespan drift {:+.3}% (ceiling {:.3}%) {}",
                                p.machines,
                                p.epsilon,
                                p.quantum_ms,
                                drift,
                                max_drift,
                                if ok { "OK" } else { "DRIFTED" }
                            );
                            failed |= !ok;
                        }
                        None => println!(
                            "check: {} machines has no exact baseline point, drift unchecked",
                            p.machines
                        ),
                    }
                }
            }
        }
        if failed {
            eprintln!("scale_sweep --check: budget, makespan, or drift ceiling exceeded");
            std::process::exit(1);
        }
        return; // check mode never rewrites the committed record
    }
    let mut json = String::from("{\n  \"bench\": \"scale_sweep\",\n");
    json.push_str(&format!(
        "  \"gib_per_machine\": {GIB_PER_MACHINE},\n  \"points\": [\n"
    ));
    for (i, p) in points.iter().enumerate() {
        let drift = p
            .drift_pct
            .map(|d| format!(", \"drift_pct\": {d:.4}"))
            .unwrap_or_default();
        // Scalar fields stay on one line — the line-based baseline parser
        // keys off machines/wall_s/makespan_s co-occurring; the nested
        // per-stage lines carry none of those keys.
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"machines\": {}, \"tasks\": {}, \"epsilon\": {}, \
             \"quantum_ms\": {}, \"templates\": {}, \"racks\": {}, \"shards\": {}, \
             \"makespan_s\": {:.3}, \
             \"wall_s\": {:.3}, \"events\": {}, \"reallocs\": {}, \"alloc_s\": {:.3}, \
             \"machine_alloc_s\": {:.3}, \"drain_s\": {:.3}, \"completion_s\": {:.3}, \
             \"control_s\": {:.3}, \"template_build_s\": {:.3}, \"instantiate_s\": {:.3}, \
             \"template_hits\": {}, \"template_misses\": {}, \"template_invalidations\": {}{},\n",
            p.workload.as_str(),
            p.machines,
            p.tasks,
            p.epsilon,
            p.quantum_ms,
            p.templates,
            p.racks,
            p.shards,
            p.makespan_s,
            p.wall_s,
            p.events,
            p.reallocs,
            p.alloc_s,
            p.machine_alloc_s,
            p.drain_s,
            p.completion_s,
            p.control_s,
            p.template_build_s,
            p.instantiate_s,
            p.template_hits,
            p.template_misses,
            p.template_invalidations,
            drift,
        ));
        json.push_str("     \"stages\": [\n");
        for (k, s) in p.stages.iter().enumerate() {
            json.push_str(&format!(
                "       {{\"job\": \"{}\", \"stage\": {}, \"tasks_started\": {}, \
                 \"build_s\": {:.6}, \"instantiate_s\": {:.6}, \"hits\": {}, \
                 \"misses\": {}, \"invalidations\": {}}}{}\n",
                s.job,
                s.stage,
                s.tasks_started,
                s.build_s,
                s.instantiate_s,
                s.hits,
                s.misses,
                s.invalidations,
                if k + 1 < p.stages.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!(
            "     ]}}{}\n",
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&args.out, &json).unwrap_or_else(|e| panic!("write {}: {e}", args.out));
    println!("\nwrote {}", args.out);
    if failed {
        eprintln!("scale_sweep: control-plane budget exceeded");
        std::process::exit(1);
    }
}
