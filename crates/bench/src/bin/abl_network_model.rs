//! Ablation: receiver-side network model vs a full-duplex max-min fabric.
//!
//! The paper's network scheduler is receiver-side (§3.3), and this repo's
//! default model follows it: transfers consume receiver bandwidth only. The
//! fabric mode adds sender-link constraints with max-min fairness. On the
//! symmetric all-to-all shuffles of the evaluation the two agree — which is
//! the justification for the simpler model — while a deliberately hot sender
//! shows where the fabric is required.

use cluster::{ClusterSpec, MachineSpec};
use dataflow::{BlockMap, CostModel, JobBuilder};
use mt_bench::{header, pct_diff};
use workloads::{sort_job, SortConfig, GIB};

fn run_with(cluster: &ClusterSpec, job: dataflow::JobSpec, blocks: BlockMap, duplex: bool) -> f64 {
    let cfg = monotasks_core::MonoConfig {
        full_duplex_network: duplex,
        ..monotasks_core::MonoConfig::default()
    };
    monotasks_core::run(cluster, &[(job, blocks)], &cfg).jobs[0].duration_secs()
}

fn main() {
    header(
        "Ablation: network model",
        "receiver-side bandwidth vs full-duplex max-min fabric",
        "symmetric shuffles agree; a hot sender needs the fabric",
    );
    let cluster = ClusterSpec::new(20, MachineSpec::m2_4xlarge());

    let (job, blocks) = sort_job(&SortConfig::new(75.0, 10, 20, 2));
    let rx = run_with(&cluster, job.clone(), blocks.clone(), false);
    let fd = run_with(&cluster, job, blocks, true);
    println!(
        "symmetric 75 GiB sort:  rx-only {rx:>7.1} s   full-duplex {fd:>7.1} s   ({:+.1}%)",
        pct_diff(rx, fd)
    );

    // Hot sender: one giant cached partition shuffled to everyone.
    let total = 20.0 * GIB;
    let hot = JobBuilder::new("hot", CostModel::spark_1_3())
        .read_memory(total, total / 10_000.0, 1, true)
        .map(1.0, 1.0, false)
        .shuffle(160, true)
        .map(1.0, 1.0, false)
        .write_memory();
    let blocks = BlockMap::round_robin(1, 1, 2);
    let rx = run_with(&cluster, hot.clone(), blocks.clone(), false);
    let fd = run_with(&cluster, hot, blocks, true);
    println!(
        "hot-sender broadcast:   rx-only {rx:>7.1} s   full-duplex {fd:>7.1} s   ({:+.1}%)",
        pct_diff(rx, fd)
    );
}
