//! Tiny ASCII sparkline renderer for utilization time-series.

/// Renders values in `[0, 1]` as a sparkline string (one glyph per sample).
///
/// # Examples
///
/// ```
/// assert_eq!(mt_bench::ascii::sparkline(&[0.0, 0.5, 1.0]), " ▄█");
/// ```
pub fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    values
        .iter()
        .map(|v| {
            let clamped = v.clamp(0.0, 1.0);
            let idx = (clamped * (GLYPHS.len() - 1) as f64).round() as usize;
            GLYPHS[idx]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::sparkline;

    #[test]
    fn maps_extremes_and_midpoints() {
        assert_eq!(sparkline(&[0.0]), " ");
        assert_eq!(sparkline(&[1.0]), "█");
        assert_eq!(sparkline(&[0.5]), "▄");
        // Out-of-range values clamp.
        assert_eq!(sparkline(&[-1.0, 2.0]), " █");
    }

    #[test]
    fn one_glyph_per_sample() {
        let s = sparkline(&[0.1; 37]);
        assert_eq!(s.chars().count(), 37);
    }
}
