//! Criterion benchmarks of the simulation engine itself.
//!
//! The figure binaries measure *simulated* time; these measure *wall-clock*
//! cost of the machinery: the fluid allocator's progressive filling, the
//! max-min flow allocator, both executors end-to-end, and the real in-memory
//! reference executor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cluster::{ClusterSpec, DiskId, FluidMachine, MachineSpec, StreamDemand, StreamId};
use dataflow::LocalDataset;
use simcore::{FlowAllocator, FlowId, SimTime};
use workloads::{bdb_job, sort_job, BdbQuery, SortConfig};

/// Insert/advance/drain cycles on one machine's fluid allocator.
fn bench_fluid(c: &mut Criterion) {
    let mut g = c.benchmark_group("fluid_allocator");
    for streams in [4usize, 16, 64, 256] {
        g.bench_with_input(
            BenchmarkId::new("insert_drain", streams),
            &streams,
            |b, &n| {
                b.iter(|| {
                    let mut m = FluidMachine::new(MachineSpec::m2_4xlarge());
                    for i in 0..n as u64 {
                        let mut d = StreamDemand::disk_read_only(DiskId((i % 2) as usize), 1e6, 2);
                        d.cpu = 0.01;
                        m.insert(SimTime::ZERO, StreamId(i), d);
                    }
                    let mut now = SimTime::ZERO;
                    while let Some(t) = m.next_completion(now) {
                        now = t;
                        m.advance(now);
                        black_box(m.take_completed(now));
                    }
                    now
                })
            },
        );
    }
    g.finish();
}

/// Max-min fair reallocation under churn.
fn bench_maxmin(c: &mut Criterion) {
    let mut g = c.benchmark_group("maxmin");
    for flows in [8usize, 64, 256, 1024] {
        g.bench_with_input(BenchmarkId::new("churn", flows), &flows, |b, &n| {
            b.iter(|| {
                let mut fab = FlowAllocator::new(20, 1e8, 1e8);
                for i in 0..n as u64 {
                    fab.insert(
                        SimTime::ZERO,
                        FlowId(i),
                        (i % 20) as usize,
                        ((i + 7) % 20) as usize,
                        1e6 + i as f64,
                    );
                }
                let mut now = SimTime::ZERO;
                while fab.active_flows() > 0 {
                    now = fab.next_completion(now).expect("flows active");
                    fab.advance(now);
                    black_box(fab.take_completed(now));
                }
                now
            })
        });
    }
    g.finish();
}

/// Whole-job simulation cost for both executors (Fig 5's q2a shape).
fn bench_executors(c: &mut Criterion) {
    let cluster = ClusterSpec::new(5, MachineSpec::m2_4xlarge());
    let (job, blocks) = bdb_job(BdbQuery::Q2a, 5, 2);
    let mut g = c.benchmark_group("executors");
    g.sample_size(10);
    g.bench_function("monotasks_bdb_q2a", |b| {
        b.iter(|| {
            monotasks_core::run(
                &cluster,
                &[(job.clone(), blocks.clone())],
                &monotasks_core::MonoConfig::default(),
            )
            .makespan
        })
    });
    g.bench_function("sparklike_bdb_q2a", |b| {
        b.iter(|| {
            sparklike::run(
                &cluster,
                &[(job.clone(), blocks.clone())],
                &sparklike::SparkConfig::default(),
            )
            .makespan
        })
    });
    let sort = sort_job(&SortConfig::new(20.0, 10, 5, 2));
    g.bench_function("monotasks_sort_20gib", |b| {
        b.iter(|| {
            monotasks_core::run(
                &cluster,
                &[(sort.0.clone(), sort.1.clone())],
                &monotasks_core::MonoConfig::default(),
            )
            .makespan
        })
    });
    g.finish();
}

/// The real in-memory reference executor on an actual computation.
fn bench_reference(c: &mut Criterion) {
    let words: Vec<String> = (0..20_000)
        .map(|i| format!("w{} x{} y{}", i % 97, i % 31, i % 7))
        .collect();
    c.bench_function("reference_wordcount_20k_lines", |b| {
        b.iter(|| {
            LocalDataset::from_vec(words.clone(), 8)
                .flat_map(|l| l.split(' ').map(str::to_string).collect::<Vec<_>>())
                .map(|w| (w, 1u64))
                .reduce_by_key(8, |a, b| a + b)
                .count()
        })
    });
}

criterion_group!(
    benches,
    bench_fluid,
    bench_maxmin,
    bench_executors,
    bench_reference
);
criterion_main!(benches);
