//! End-to-end tests of the live monotasks runtime: real files, real threads,
//! real answers.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use monotasks_live::{LiveEngine, LiveJob, LiveRecord, LiveResource, Purpose, Record};

fn scratch(tag: &str) -> Vec<PathBuf> {
    let base = std::env::temp_dir().join(format!("monotasks-live-{tag}-{}", std::process::id()));
    let dirs = vec![base.join("disk0"), base.join("disk1")];
    for d in &dirs {
        let _ = std::fs::remove_dir_all(d);
    }
    dirs
}

fn wordcount_job(engine: &LiveEngine, out_tag: &str, texts: &[&str]) -> LiveJob {
    let input = texts
        .iter()
        .enumerate()
        .map(|(i, text)| {
            let records: Vec<Record> = text
                .lines()
                .map(|l| Record::new(Vec::new(), l.as_bytes().to_vec()))
                .collect();
            engine.write_input_block(i, &format!("in-{out_tag}-{i}"), &records)
        })
        .collect();
    LiveJob {
        input,
        map: Arc::new(|rec: Record| {
            String::from_utf8_lossy(&rec.value)
                .split_whitespace()
                .map(|w| Record::new(w.as_bytes().to_vec(), vec![1u8]))
                .collect()
        }),
        reduce: Arc::new(|key: &[u8], values: Vec<Vec<u8>>| {
            let count = values.len() as u64;
            vec![Record::new(key.to_vec(), count.to_be_bytes().to_vec())]
        }),
        reduce_partitions: 4,
        shuffle_to_disk: true,
        output_dir: std::env::temp_dir().join(format!(
            "monotasks-live-out-{out_tag}-{}",
            std::process::id()
        )),
    }
}

fn counts_of(records: Vec<Record>) -> HashMap<String, u64> {
    records
        .into_iter()
        .map(|r| {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&r.value);
            (
                String::from_utf8(r.key).expect("utf8 key"),
                u64::from_be_bytes(buf),
            )
        })
        .collect()
}

#[test]
fn wordcount_produces_correct_counts() {
    let engine = LiveEngine::new(4, scratch("wc"));
    let job = wordcount_job(
        &engine,
        "wc",
        &[
            "the quick brown fox\nthe lazy dog",
            "the quick dog\njumps over the fox",
        ],
    );
    let result = engine.run(job);
    let counts = counts_of(LiveEngine::read_output(&result.output_files));
    assert_eq!(counts["the"], 4);
    assert_eq!(counts["quick"], 2);
    assert_eq!(counts["fox"], 2);
    assert_eq!(counts["dog"], 2);
    assert_eq!(counts["jumps"], 1);
    assert_eq!(counts.values().sum::<u64>(), 14);
}

#[test]
fn in_memory_shuffle_gives_identical_answers_without_shuffle_io() {
    let engine = LiveEngine::new(4, scratch("mem"));
    let texts = ["alpha beta gamma alpha", "beta beta gamma"];
    let mut disk_job = wordcount_job(&engine, "mem-d", &texts);
    disk_job.shuffle_to_disk = true;
    let disk_out = counts_of(LiveEngine::read_output(&engine.run(disk_job).output_files));

    let mut mem_job = wordcount_job(&engine, "mem-m", &texts);
    mem_job.shuffle_to_disk = false;
    let mem_result = engine.run(mem_job);
    let mem_out = counts_of(LiveEngine::read_output(&mem_result.output_files));
    assert_eq!(disk_out, mem_out);
    // In-memory shuffle must emit no shuffle I/O monotasks.
    assert!(mem_result
        .records
        .iter()
        .all(|r| { r.purpose != Purpose::WriteShuffle && r.purpose != Purpose::ReadShuffle }));
}

#[test]
fn every_monotask_uses_exactly_one_resource_and_timestamps_are_sane() {
    let engine = LiveEngine::new(2, scratch("rec"));
    let job = wordcount_job(&engine, "rec", &["one two three", "four five six one"]);
    let result = engine.run(job);
    assert!(!result.records.is_empty());
    let mut saw_cpu = false;
    let mut saw_disk = false;
    for r in &result.records {
        assert!(r.queued <= r.started, "{r:?}");
        assert!(r.started <= r.ended, "{r:?}");
        match (r.resource, r.purpose) {
            (LiveResource::Cpu, Purpose::Compute) => saw_cpu = true,
            (LiveResource::Cpu, p) => panic!("CPU pool ran I/O monotask {p:?}"),
            (LiveResource::Disk(_), Purpose::Compute) => {
                panic!("disk thread ran a compute monotask")
            }
            (LiveResource::Disk(_), _) => saw_disk = true,
        }
    }
    assert!(saw_cpu && saw_disk);
    // 2 maps (read+compute) + shuffle writes + per-partition chains.
    assert!(result.summary.monotasks >= 8);
    assert!(result.summary.disk_read_bytes > 0);
    assert!(result.summary.disk_write_bytes > 0);
}

#[test]
fn sort_job_orders_keys_within_partitions() {
    let engine = LiveEngine::new(4, scratch("sort"));
    // Identity map, identity reduce: the engine's BTreeMap grouping yields
    // key-sorted partitions — a sort-by-key in MapReduce clothing.
    let mut keys: Vec<u32> = (0..500).rev().collect();
    keys.extend(0..500); // duplicates
    let records: Vec<Record> = keys
        .iter()
        .map(|k| Record::new(k.to_be_bytes().to_vec(), b"v".to_vec()))
        .collect();
    let input = vec![
        engine.write_input_block(0, "sort-0", &records[..400]),
        engine.write_input_block(1, "sort-1", &records[400..]),
    ];
    let job = LiveJob {
        input,
        map: Arc::new(|r| vec![r]),
        reduce: Arc::new(|key: &[u8], values: Vec<Vec<u8>>| {
            values
                .into_iter()
                .map(|v| Record::new(key.to_vec(), v))
                .collect()
        }),
        reduce_partitions: 3,
        shuffle_to_disk: true,
        output_dir: std::env::temp_dir()
            .join(format!("monotasks-live-out-sort-{}", std::process::id())),
    };
    let result = engine.run(job);
    let mut total = 0;
    for f in &result.output_files {
        let part = LiveEngine::read_output(std::slice::from_ref(f));
        total += part.len();
        assert!(
            part.windows(2).all(|w| w[0].key <= w[1].key),
            "partition {f:?} not key-sorted"
        );
    }
    assert_eq!(total, 1000, "records lost or duplicated in the shuffle");
}

#[test]
fn cpu_heavy_jobs_overlap_compute_across_cores() {
    let engine = LiveEngine::new(4, scratch("par"));
    // 8 blocks of busywork: with 4 cores, total CPU busy time should exceed
    // the wall time (i.e. computes genuinely overlapped).
    let records: Vec<Record> = (0..64)
        .map(|i: u64| Record::new(i.to_be_bytes().to_vec(), vec![0u8; 1024]))
        .collect();
    let input: Vec<PathBuf> = (0..8)
        .map(|i| engine.write_input_block(i, &format!("par-{i}"), &records))
        .collect();
    let job = LiveJob {
        input,
        map: Arc::new(|r| {
            // A few hundred microseconds of real work per record.
            let mut acc = 0u64;
            for b in r.value.iter() {
                for i in 0..200u64 {
                    acc = acc
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(*b as u64 + i);
                }
            }
            vec![Record::new(r.key, acc.to_be_bytes().to_vec())]
        }),
        reduce: Arc::new(|key: &[u8], mut values: Vec<Vec<u8>>| {
            values.sort();
            vec![Record::new(key.to_vec(), values.swap_remove(0))]
        }),
        reduce_partitions: 4,
        shuffle_to_disk: false,
        output_dir: std::env::temp_dir()
            .join(format!("monotasks-live-out-par-{}", std::process::id())),
    };
    let result = engine.run(job);
    let cpu_busy = result.summary.cpu_busy.as_secs_f64();
    let wall = result.wall.as_secs_f64();
    assert!(
        cpu_busy > 1.2 * wall,
        "no CPU overlap: busy {cpu_busy:.4}s vs wall {wall:.4}s"
    );
}

#[test]
fn empty_and_degenerate_inputs_are_handled() {
    let engine = LiveEngine::new(2, scratch("edge"));
    // Block with zero records; map that emits nothing.
    let input = vec![
        engine.write_input_block(0, "edge-empty", &[]),
        engine.write_input_block(1, "edge-one", &[Record::utf8("k", "v")]),
    ];
    let job = LiveJob {
        input,
        map: Arc::new(|_r| Vec::new()), // drops everything
        reduce: Arc::new(|key: &[u8], _v| vec![Record::new(key.to_vec(), vec![])]),
        reduce_partitions: 1,
        shuffle_to_disk: true,
        output_dir: std::env::temp_dir()
            .join(format!("monotasks-live-out-edge-{}", std::process::id())),
    };
    let result = engine.run(job);
    assert_eq!(result.output_files.len(), 1);
    assert_eq!(LiveEngine::read_output(&result.output_files).len(), 0);
    // Reads still happened (the engine cannot know blocks are empty a priori).
    assert!(
        result
            .records
            .iter()
            .filter(|r| r.purpose == Purpose::ReadInput)
            .count()
            == 2
    );
}

#[test]
fn single_core_single_disk_still_completes() {
    let base = std::env::temp_dir().join(format!("monotasks-live-1x1-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let engine = LiveEngine::new(1, vec![base.join("d0")]);
    let job = wordcount_job(&engine, "tiny", &["a b a", "b b"]);
    let counts = counts_of(LiveEngine::read_output(&engine.run(job).output_files));
    assert_eq!(counts["a"], 2);
    assert_eq!(counts["b"], 3);
}

#[test]
fn deterministic_output_across_runs() {
    let texts = ["repeatable runs are a feature", "runs repeatable feature"];
    let run = |tag: &str| {
        let engine = LiveEngine::new(3, scratch(tag));
        let job = wordcount_job(&engine, tag, &texts);
        counts_of(LiveEngine::read_output(&engine.run(job).output_files))
    };
    assert_eq!(run("det-a"), run("det-b"));
}

#[test]
fn records_cover_the_whole_monotask_chain() {
    let engine = LiveEngine::new(2, scratch("chain"));
    let job = wordcount_job(&engine, "chain", &["a b c", "c b a"]);
    let result = engine.run(job);
    let count = |p: Purpose| result.records.iter().filter(|r| r.purpose == p).count();
    assert_eq!(count(Purpose::ReadInput), 2, "one read per input block");
    assert!(count(Purpose::WriteShuffle) >= 2);
    assert!(count(Purpose::ReadShuffle) >= 2);
    assert_eq!(count(Purpose::WriteOutput), 4, "one write per partition");
    // Compute: one per map task + one per reduce partition.
    assert_eq!(count(Purpose::Compute), 2 + 4);
    let _ = LiveRecord::service; // public helper exercised elsewhere
}
