//! The live engine: a MapReduce-shaped job decomposed into real monotasks.
//!
//! The engine plays both roles of §3's architecture on one machine: the job
//! scheduler (it creates one map multitask per input block and one reduce
//! multitask per partition, with a barrier between stages) and the Local DAG
//! Scheduler (each multitask's monotask chain is expressed as continuations:
//! a finished monotask submits its dependents to their resource pools, and
//! fan-in joins — a reduce waiting for all its shuffle reads — use an atomic
//! countdown whose last decrement submits the compute monotask).

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::fs;
use std::hash::{Hash, Hasher};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel;
use parking_lot::Mutex;

use crate::data::{Record, RecordBlock};
use crate::metrics::{LiveRecord, LiveResource, LiveSummary, Purpose};
use crate::pools::{CpuPool, DiskPool};

/// The map function: one input record to any number of output records.
pub type MapFn = Arc<dyn Fn(Record) -> Vec<Record> + Send + Sync>;

/// The reduce function: a key and all its values to output records.
pub type ReduceFn = Arc<dyn Fn(&[u8], Vec<Vec<u8>>) -> Vec<Record> + Send + Sync>;

/// A MapReduce-shaped job over real files.
#[derive(Clone)]
pub struct LiveJob {
    /// Input block files (create them with [`LiveEngine::write_input_block`]).
    pub input: Vec<PathBuf>,
    /// The map function.
    pub map: MapFn,
    /// The reduce function.
    pub reduce: ReduceFn,
    /// Number of reduce partitions (= output files).
    pub reduce_partitions: usize,
    /// Write shuffle data to disk (the paper's default) or keep it in memory.
    pub shuffle_to_disk: bool,
    /// Directory for the `part-NNNNN` output files.
    pub output_dir: PathBuf,
}

/// What a finished job returns.
pub struct JobResult {
    /// One output file per reduce partition.
    pub output_files: Vec<PathBuf>,
    /// Every monotask's wall-clock record.
    pub records: Vec<LiveRecord>,
    /// Aggregates of `records`.
    pub summary: LiveSummary,
    /// End-to-end wall time.
    pub wall: Duration,
}

/// The resource pools (shared into monotask continuations).
struct Ctx {
    cpu: CpuPool,
    disks: Vec<DiskPool>,
}

/// Per-run shared state.
struct RunState {
    job: LiveJob,
    /// In-memory shuffle buffers, one per partition.
    shuffle_mem: Vec<Mutex<Vec<RecordBlock>>>,
    /// On-disk shuffle files per partition: `(disk index, path)`.
    shuffle_files: Vec<Mutex<Vec<(usize, PathBuf)>>>,
    /// Round-robin cursor for choosing a disk for writes.
    write_cursor: AtomicUsize,
    records: Mutex<Vec<LiveRecord>>,
    done_tx: channel::Sender<()>,
}

impl RunState {
    fn record(&self, r: LiveRecord) {
        self.records.lock().push(r);
    }
}

fn hash_partition(key: &[u8], partitions: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % partitions as u64) as usize
}

/// A single-machine monotasks runtime. See the crate docs.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use monotasks_live::{LiveEngine, LiveJob, Record};
///
/// let base = std::env::temp_dir().join(format!("mono-doc-{}", std::process::id()));
/// let engine = LiveEngine::new(2, vec![base.join("d0"), base.join("d1")]);
/// let input = vec![engine.write_input_block(
///     0,
///     "block-0",
///     &[Record::utf8("", "one two two")],
/// )];
/// let job = LiveJob {
///     input,
///     map: Arc::new(|r: Record| {
///         String::from_utf8_lossy(&r.value)
///             .split_whitespace()
///             .map(|w| Record::new(w.as_bytes().to_vec(), vec![1u8]))
///             .collect()
///     }),
///     reduce: Arc::new(|key: &[u8], values: Vec<Vec<u8>>| {
///         vec![Record::new(key.to_vec(), vec![values.len() as u8])]
///     }),
///     reduce_partitions: 2,
///     shuffle_to_disk: true,
///     output_dir: base.join("out"),
/// };
/// let result = engine.run(job);
/// let counts = LiveEngine::read_output(&result.output_files);
/// assert_eq!(counts.len(), 2); // "one" and "two"
/// ```
pub struct LiveEngine {
    ctx: Arc<Ctx>,
    /// One scratch directory per disk (shuffle files land here).
    disk_dirs: Vec<PathBuf>,
}

impl LiveEngine {
    /// Creates an engine with `cores` CPU workers and one disk thread per
    /// directory in `disk_dirs` (conventionally one per physical device).
    ///
    /// # Panics
    ///
    /// Panics if `disk_dirs` is empty or a directory cannot be created.
    pub fn new(cores: usize, disk_dirs: Vec<PathBuf>) -> LiveEngine {
        assert!(!disk_dirs.is_empty(), "need at least one disk directory");
        for d in &disk_dirs {
            fs::create_dir_all(d).unwrap_or_else(|e| panic!("create {d:?}: {e}"));
        }
        let disks = (0..disk_dirs.len()).map(DiskPool::new).collect();
        LiveEngine {
            ctx: Arc::new(Ctx {
                cpu: CpuPool::new(cores),
                disks,
            }),
            disk_dirs,
        }
    }

    /// Number of disks the engine schedules.
    pub fn n_disks(&self) -> usize {
        self.disk_dirs.len()
    }

    /// Serializes `records` into an input block file on disk `disk`,
    /// returning its path.
    pub fn write_input_block(&self, disk: usize, name: &str, records: &[Record]) -> PathBuf {
        let path = self.disk_dirs[disk % self.n_disks()].join(name);
        let block = RecordBlock::serialize(records);
        fs::write(&path, block.as_bytes()).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
        path
    }

    /// Runs `job` to completion, blocking the calling thread.
    ///
    /// # Panics
    ///
    /// Panics on I/O errors or corrupt blocks — runtime integrity errors,
    /// not user errors.
    pub fn run(&self, job: LiveJob) -> JobResult {
        assert!(job.reduce_partitions > 0, "need at least one partition");
        assert!(!job.input.is_empty(), "need at least one input block");
        fs::create_dir_all(&job.output_dir)
            .unwrap_or_else(|e| panic!("create {:?}: {e}", job.output_dir));
        let start = Instant::now();
        let (done_tx, done_rx) = channel::unbounded();
        let n_partitions = job.reduce_partitions;
        let n_maps = job.input.len();
        let state = Arc::new(RunState {
            job,
            shuffle_mem: (0..n_partitions).map(|_| Mutex::new(Vec::new())).collect(),
            shuffle_files: (0..n_partitions).map(|_| Mutex::new(Vec::new())).collect(),
            write_cursor: AtomicUsize::new(0),
            records: Mutex::new(Vec::new()),
            done_tx,
        });

        // Map stage: one multitask per input block.
        for (i, path) in state.job.input.clone().into_iter().enumerate() {
            self.submit_map(i, path, &state);
        }
        for _ in 0..n_maps {
            done_rx.recv().expect("map multitask completion");
        }

        // Barrier, then the reduce stage: one multitask per partition.
        for p in 0..n_partitions {
            self.submit_reduce(p, &state);
        }
        for _ in 0..n_partitions {
            done_rx.recv().expect("reduce multitask completion");
        }

        let output_files = (0..n_partitions)
            .map(|p| state.job.output_dir.join(format!("part-{p:05}")))
            .collect();
        let records = std::mem::take(&mut *state.records.lock());
        let summary = LiveSummary::from_records(&records);
        JobResult {
            output_files,
            records,
            summary,
            wall: start.elapsed(),
        }
    }

    /// Map multitask `i`: disk read → compute → shuffle write(s).
    fn submit_map(&self, i: usize, path: PathBuf, state: &Arc<RunState>) {
        let ctx = self.ctx.clone();
        let state = state.clone();
        let disk_dirs = self.disk_dirs.clone();
        let disk = i % ctx.disks.len();
        let queued = Instant::now();
        self.ctx.disks[disk].submit_read(Box::new(move || {
            let started = Instant::now();
            let data = fs::read(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
            let bytes = data.len();
            state.record(LiveRecord {
                resource: LiveResource::Disk(disk),
                purpose: Purpose::ReadInput,
                queued,
                started,
                ended: Instant::now(),
                bytes,
            });
            // Dependent: the compute monotask.
            let ctx2 = ctx.clone();
            let queued = Instant::now();
            let cpu = ctx.cpu_submitter();
            cpu(Box::new(move || {
                let started = Instant::now();
                let block = RecordBlock::from_bytes(Bytes::from(data));
                let input = block.deserialize().expect("corrupt input block");
                let n = state.job.reduce_partitions;
                let mut buckets: Vec<Vec<Record>> = (0..n).map(|_| Vec::new()).collect();
                for rec in input {
                    for out in (state.job.map)(rec) {
                        buckets[hash_partition(&out.key, n)].push(out);
                    }
                }
                let blocks: Vec<(usize, RecordBlock)> = buckets
                    .into_iter()
                    .enumerate()
                    .filter(|(_, b)| !b.is_empty())
                    .map(|(p, b)| (p, RecordBlock::serialize(&b)))
                    .collect();
                state.record(LiveRecord {
                    resource: LiveResource::Cpu,
                    purpose: Purpose::Compute,
                    queued,
                    started,
                    ended: Instant::now(),
                    bytes,
                });
                if state.job.shuffle_to_disk {
                    Self::write_shuffle_blocks(i, blocks, &ctx2, &state, &disk_dirs);
                } else {
                    for (p, b) in blocks {
                        state.shuffle_mem[p].lock().push(b);
                    }
                    state.done_tx.send(()).expect("engine alive");
                }
            }));
        }));
    }

    /// Writes a map task's shuffle blocks, each as one disk-write monotask;
    /// the last write completes the multitask.
    fn write_shuffle_blocks(
        task: usize,
        blocks: Vec<(usize, RecordBlock)>,
        ctx: &Arc<Ctx>,
        state: &Arc<RunState>,
        disk_dirs: &[PathBuf],
    ) {
        if blocks.is_empty() {
            state.done_tx.send(()).expect("engine alive");
            return;
        }
        let remaining = Arc::new(AtomicUsize::new(blocks.len()));
        for (p, block) in blocks {
            let disk = state.write_cursor.fetch_add(1, Ordering::Relaxed) % ctx.disks.len();
            let path = disk_dirs[disk].join(format!("shuffle-t{task}-p{p}"));
            state.shuffle_files[p].lock().push((disk, path.clone()));
            let state = state.clone();
            let remaining = remaining.clone();
            let queued = Instant::now();
            ctx.disks[disk].submit_write(Box::new(move || {
                let started = Instant::now();
                let bytes = block.len();
                write_flushed(&path, block.as_bytes());
                state.record(LiveRecord {
                    resource: LiveResource::Disk(disk),
                    purpose: Purpose::WriteShuffle,
                    queued,
                    started,
                    ended: Instant::now(),
                    bytes,
                });
                if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    state.done_tx.send(()).expect("engine alive");
                }
            }));
        }
    }

    /// Reduce multitask `p`: shuffle reads (fan-in) → compute → output write.
    fn submit_reduce(&self, p: usize, state: &Arc<RunState>) {
        let ctx = self.ctx.clone();
        if state.job.shuffle_to_disk {
            let files = state.shuffle_files[p].lock().clone();
            if files.is_empty() {
                Self::submit_reduce_compute(p, Vec::new(), &ctx, state);
                return;
            }
            let remaining = Arc::new(AtomicUsize::new(files.len()));
            let collected: Arc<Mutex<Vec<RecordBlock>>> = Arc::new(Mutex::new(Vec::new()));
            for (disk, path) in files {
                let state = state.clone();
                let ctx = ctx.clone();
                let remaining = remaining.clone();
                let collected = collected.clone();
                let queued = Instant::now();
                self.ctx.disks[disk].submit_read(Box::new(move || {
                    let started = Instant::now();
                    let data = fs::read(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
                    let bytes = data.len();
                    collected
                        .lock()
                        .push(RecordBlock::from_bytes(Bytes::from(data)));
                    state.record(LiveRecord {
                        resource: LiveResource::Disk(disk),
                        purpose: Purpose::ReadShuffle,
                        queued,
                        started,
                        ended: Instant::now(),
                        bytes,
                    });
                    if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                        let blocks = std::mem::take(&mut *collected.lock());
                        Self::submit_reduce_compute(p, blocks, &ctx, &state);
                    }
                }));
            }
        } else {
            let blocks = std::mem::take(&mut *state.shuffle_mem[p].lock());
            Self::submit_reduce_compute(p, blocks, &ctx, state);
        }
    }

    fn submit_reduce_compute(
        p: usize,
        blocks: Vec<RecordBlock>,
        ctx: &Arc<Ctx>,
        state: &Arc<RunState>,
    ) {
        let state = state.clone();
        let ctx2 = ctx.clone();
        let queued = Instant::now();
        ctx.cpu.submit(Box::new(move || {
            let started = Instant::now();
            let in_bytes: usize = blocks.iter().map(RecordBlock::len).sum();
            // Group by key; BTreeMap keeps output deterministic.
            let mut groups: BTreeMap<Vec<u8>, Vec<Vec<u8>>> = BTreeMap::new();
            for b in blocks {
                for rec in b.deserialize().expect("corrupt shuffle block") {
                    groups.entry(rec.key).or_default().push(rec.value);
                }
            }
            let mut out = Vec::new();
            for (key, values) in groups {
                out.extend((state.job.reduce)(&key, values));
            }
            let block = RecordBlock::serialize(&out);
            state.record(LiveRecord {
                resource: LiveResource::Cpu,
                purpose: Purpose::Compute,
                queued,
                started,
                ended: Instant::now(),
                bytes: in_bytes,
            });
            // Output write monotask.
            let disk = state.write_cursor.fetch_add(1, Ordering::Relaxed) % ctx2.disks.len();
            let path = state.job.output_dir.join(format!("part-{p:05}"));
            let state2 = state.clone();
            let queued = Instant::now();
            ctx2.disks[disk].submit_write(Box::new(move || {
                let started = Instant::now();
                let bytes = block.len();
                write_flushed(&path, block.as_bytes());
                state2.record(LiveRecord {
                    resource: LiveResource::Disk(disk),
                    purpose: Purpose::WriteOutput,
                    queued,
                    started,
                    ended: Instant::now(),
                    bytes,
                });
                state2.done_tx.send(()).expect("engine alive");
            }));
        }));
    }

    /// Reads output files back into records (test/verification helper).
    pub fn read_output(files: &[PathBuf]) -> Vec<Record> {
        let mut out = Vec::new();
        for f in files {
            let data = fs::read(f).unwrap_or_else(|e| panic!("read {f:?}: {e}"));
            out.extend(
                RecordBlock::from_bytes(Bytes::from(data))
                    .deserialize()
                    .expect("corrupt output block"),
            );
        }
        out
    }
}

impl Ctx {
    /// A submit function for the CPU pool usable from inside disk closures.
    fn cpu_submitter(self: &Arc<Self>) -> impl Fn(crate::pools::Job) {
        let ctx = self.clone();
        move |job| ctx.cpu.submit(job)
    }
}

/// Writes and flushes a file — monotask writes never linger in the cache
/// (§3.1, principle 4).
fn write_flushed(path: &Path, data: &[u8]) {
    let mut f = fs::File::create(path).unwrap_or_else(|e| panic!("create {path:?}: {e}"));
    f.write_all(data)
        .unwrap_or_else(|e| panic!("write {path:?}: {e}"));
    f.sync_all()
        .unwrap_or_else(|e| panic!("sync {path:?}: {e}"));
}
