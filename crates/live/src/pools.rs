//! Per-resource thread pools: the paper's schedulers as real threads.
//!
//! * [`CpuPool`] runs one compute monotask per configured core — the CPU
//!   scheduler of §3.3.
//! * [`DiskPool`] owns **one thread per disk**, so a device executes one
//!   monotask at a time, and it round-robins between its read queue and its
//!   write queue so a backlog of writes cannot starve the reads that feed
//!   the CPU (§3.3's queueing discussion).
//!
//! Jobs are continuation closures: a monotask finishes by submitting its
//! dependents to their pools, which is how the Local DAG Scheduler expresses
//! linear chains without central bookkeeping.

use crossbeam::channel::{self, Receiver, Sender, TryRecvError};
use std::thread::JoinHandle;

/// A unit of work for a pool thread.
pub type Job = Box<dyn FnOnce() + Send>;

/// A fixed pool of CPU worker threads, one compute monotask per core.
pub struct CpuPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl CpuPool {
    /// Spawns `cores` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: usize) -> CpuPool {
        assert!(cores > 0, "need at least one core");
        let (tx, rx) = channel::unbounded::<Job>();
        let workers = (0..cores)
            .map(|i| {
                let rx: Receiver<Job> = rx.clone();
                std::thread::Builder::new()
                    .name(format!("mono-cpu-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("spawn cpu worker")
            })
            .collect();
        CpuPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Queues a compute monotask.
    pub fn submit(&self, job: Job) {
        self.tx
            .as_ref()
            .expect("pool alive")
            .send(job)
            .expect("cpu pool receiver alive");
    }

    /// Number of worker threads.
    pub fn cores(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for CpuPool {
    fn drop(&mut self) {
        // Close the channel, then wait for in-flight monotasks to finish.
        self.tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// One disk's I/O thread with read/write round-robin admission.
pub struct DiskPool {
    read_tx: Option<Sender<Job>>,
    write_tx: Option<Sender<Job>>,
    worker: Option<JoinHandle<()>>,
}

impl DiskPool {
    /// Spawns the disk thread (index used only for the thread name).
    pub fn new(index: usize) -> DiskPool {
        let (read_tx, read_rx) = channel::unbounded::<Job>();
        let (write_tx, write_rx) = channel::unbounded::<Job>();
        let worker = std::thread::Builder::new()
            .name(format!("mono-disk-{index}"))
            .spawn(move || Self::serve(read_rx, write_rx))
            .expect("spawn disk worker");
        DiskPool {
            read_tx: Some(read_tx),
            write_tx: Some(write_tx),
            worker: Some(worker),
        }
    }

    /// The disk thread's loop: strictly alternate queue classes when both
    /// have work; block on either when idle; exit when both close.
    fn serve(read_rx: Receiver<Job>, write_rx: Receiver<Job>) {
        let mut serve_read_next = true;
        loop {
            let (first, second) = if serve_read_next {
                (&read_rx, &write_rx)
            } else {
                (&write_rx, &read_rx)
            };
            match first.try_recv() {
                Ok(job) => {
                    serve_read_next = !serve_read_next;
                    job();
                    continue;
                }
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => {}
            }
            match second.try_recv() {
                Ok(job) => {
                    // The preferred class was empty: keep preferring it.
                    job();
                    continue;
                }
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => {}
            }
            // Both queues empty: block until either produces or both close.
            crossbeam::channel::select! {
                recv(read_rx) -> job => match job {
                    Ok(job) => {
                        serve_read_next = false;
                        job();
                    }
                    Err(_) => {
                        // Reads closed; drain writes then exit.
                        while let Ok(job) = write_rx.recv() {
                            job();
                        }
                        return;
                    }
                },
                recv(write_rx) -> job => match job {
                    Ok(job) => {
                        serve_read_next = true;
                        job();
                    }
                    Err(_) => {
                        while let Ok(job) = read_rx.recv() {
                            job();
                        }
                        return;
                    }
                },
            }
        }
    }

    /// Queues a disk-read monotask.
    pub fn submit_read(&self, job: Job) {
        self.read_tx
            .as_ref()
            .expect("pool alive")
            .send(job)
            .expect("disk pool alive");
    }

    /// Queues a disk-write monotask.
    pub fn submit_write(&self, job: Job) {
        self.write_tx
            .as_ref()
            .expect("pool alive")
            .send(job)
            .expect("disk pool alive");
    }
}

impl Drop for DiskPool {
    fn drop(&mut self) {
        self.read_tx.take();
        self.write_tx.take();
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn cpu_pool_executes_all_jobs() {
        let pool = CpuPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = counter.clone();
            pool.submit(Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        drop(pool); // joins workers
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn cpu_pool_actually_runs_in_parallel() {
        let pool = CpuPool::new(4);
        let in_flight = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let f = in_flight.clone();
            let p = peak.clone();
            pool.submit(Box::new(move || {
                let now = f.fetch_add(1, Ordering::SeqCst) + 1;
                p.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(30));
                f.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        drop(pool);
        assert!(peak.load(Ordering::SeqCst) >= 2, "no parallelism observed");
    }

    #[test]
    fn disk_pool_is_one_at_a_time() {
        let pool = DiskPool::new(0);
        let in_flight = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        for i in 0..10 {
            let f = in_flight.clone();
            let p = peak.clone();
            let job: Job = Box::new(move || {
                let now = f.fetch_add(1, Ordering::SeqCst) + 1;
                p.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(5));
                f.fetch_sub(1, Ordering::SeqCst);
            });
            if i % 2 == 0 {
                pool.submit_read(job);
            } else {
                pool.submit_write(job);
            }
        }
        drop(pool);
        assert_eq!(
            peak.load(Ordering::SeqCst),
            1,
            "disk ran monotasks concurrently"
        );
    }

    #[test]
    fn disk_pool_round_robins_reads_and_writes() {
        let pool = DiskPool::new(0);
        let order = Arc::new(parking_lot::Mutex::new(Vec::<&'static str>::new()));
        // Stall the disk with one slow write so the queues build up.
        {
            let o = order.clone();
            pool.submit_write(Box::new(move || {
                std::thread::sleep(Duration::from_millis(50));
                o.lock().push("w0");
            }));
        }
        std::thread::sleep(Duration::from_millis(10));
        for i in 0..3 {
            let o = order.clone();
            pool.submit_write(Box::new(move || {
                o.lock().push(if i == 0 {
                    "w1"
                } else if i == 1 {
                    "w2"
                } else {
                    "w3"
                });
            }));
        }
        let o = order.clone();
        pool.submit_read(Box::new(move || o.lock().push("r1")));
        drop(pool);
        let order = order.lock().clone();
        let pos = |x: &str| order.iter().position(|o| *o == x).unwrap();
        // The read must not wait for the whole write backlog.
        assert!(
            pos("r1") < pos("w2"),
            "read starved behind writes: {order:?}"
        );
    }

    #[test]
    fn disk_pool_drains_on_shutdown() {
        let pool = DiskPool::new(0);
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let c = count.clone();
            pool.submit_read(Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
            let c = count.clone();
            pool.submit_write(Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        drop(pool);
        assert_eq!(count.load(Ordering::SeqCst), 40);
    }
}
