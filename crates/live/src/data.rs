//! On-disk record format: length-prefixed key/value pairs.
//!
//! A [`RecordBlock`] is the unit a disk monotask reads or writes — the whole
//! serialized block moves in one sequential operation, exactly the property
//! the monotasks design wants from its I/O (§3.2: "reads all of the file
//! block's bytes from disk into a serialized, in-memory buffer").

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// One key-value record.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Record {
    /// The record key (partitioning and grouping identity).
    pub key: Vec<u8>,
    /// The record value.
    pub value: Vec<u8>,
}

impl Record {
    /// Builds a record from anything byte-like.
    pub fn new(key: impl Into<Vec<u8>>, value: impl Into<Vec<u8>>) -> Record {
        Record {
            key: key.into(),
            value: value.into(),
        }
    }

    /// A record with a UTF-8 key and value (convenience for tests/examples).
    pub fn utf8(key: &str, value: &str) -> Record {
        Record::new(key.as_bytes().to_vec(), value.as_bytes().to_vec())
    }

    /// Serialized size of this record (2 × u32 length prefixes + payloads).
    pub fn serialized_len(&self) -> usize {
        8 + self.key.len() + self.value.len()
    }
}

/// A serialized block of records.
#[derive(Clone, Debug, Default)]
pub struct RecordBlock {
    bytes: Bytes,
}

impl RecordBlock {
    /// Serializes records into a block.
    pub fn serialize(records: &[Record]) -> RecordBlock {
        let total: usize = records.iter().map(Record::serialized_len).sum();
        let mut buf = BytesMut::with_capacity(total);
        for r in records {
            buf.put_u32(r.key.len() as u32);
            buf.put_u32(r.value.len() as u32);
            buf.put_slice(&r.key);
            buf.put_slice(&r.value);
        }
        RecordBlock {
            bytes: buf.freeze(),
        }
    }

    /// Wraps raw bytes previously produced by [`serialize`](Self::serialize).
    pub fn from_bytes(bytes: Bytes) -> RecordBlock {
        RecordBlock { bytes }
    }

    /// The serialized bytes.
    pub fn as_bytes(&self) -> &Bytes {
        &self.bytes
    }

    /// Serialized length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the block holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Deserializes the block back into records.
    ///
    /// # Errors
    ///
    /// Returns a description of the corruption if the block is malformed.
    pub fn deserialize(&self) -> Result<Vec<Record>, String> {
        let mut buf = self.bytes.clone();
        let mut out = Vec::new();
        while buf.has_remaining() {
            if buf.remaining() < 8 {
                return Err(format!(
                    "truncated record header: {} bytes left",
                    buf.remaining()
                ));
            }
            let klen = buf.get_u32() as usize;
            let vlen = buf.get_u32() as usize;
            if buf.remaining() < klen + vlen {
                return Err(format!(
                    "truncated record body: need {} bytes, have {}",
                    klen + vlen,
                    buf.remaining()
                ));
            }
            let key = buf.copy_to_bytes(klen).to_vec();
            let value = buf.copy_to_bytes(vlen).to_vec();
            out.push(Record { key, value });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let records = vec![
            Record::utf8("alpha", "1"),
            Record::new(vec![], vec![0u8, 1, 2]),
            Record::utf8("beta", ""),
        ];
        let block = RecordBlock::serialize(&records);
        assert_eq!(block.deserialize().unwrap(), records);
        assert_eq!(
            block.len(),
            records.iter().map(Record::serialized_len).sum::<usize>()
        );
    }

    #[test]
    fn empty_block() {
        let block = RecordBlock::serialize(&[]);
        assert!(block.is_empty());
        assert_eq!(block.deserialize().unwrap(), vec![]);
    }

    #[test]
    fn truncated_header_detected() {
        let block = RecordBlock::from_bytes(Bytes::from_static(&[1, 2, 3]));
        assert!(block.deserialize().unwrap_err().contains("header"));
    }

    #[test]
    fn truncated_body_detected() {
        let good = RecordBlock::serialize(&[Record::utf8("key", "value")]);
        let cut = good.as_bytes().slice(0..good.len() - 2);
        let bad = RecordBlock::from_bytes(cut);
        assert!(bad.deserialize().unwrap_err().contains("body"));
    }
}
