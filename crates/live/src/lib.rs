//! A *real* monotasks runtime for a single machine.
//!
//! The rest of the workspace reproduces the paper's evaluation on a simulated
//! cluster; this crate is the architecture itself as running code. Jobs are
//! MapReduce-shaped computations over real files; the engine decomposes each
//! task into monotasks — a disk read, a computation, a disk write — and
//! executes them on **per-resource thread pools that embody the paper's
//! schedulers**:
//!
//! * the CPU pool runs one compute monotask per configured core;
//! * each disk (a directory, conventionally one per physical device) has its
//!   own I/O thread, so at most one disk monotask uses a device at a time
//!   and writes are flushed before completion is reported (§3.1);
//! * disk queues round-robin between reads and writes (§3.3);
//! * a Local DAG Scheduler tracks dependencies and hands monotasks to the
//!   pools only when they are ready, so no monotask ever blocks on another
//!   mid-execution (§3.1, principle 2).
//!
//! Every monotask reports queue/start/end wall-clock timestamps and bytes
//! moved, so the same bottleneck arithmetic as `perfmodel` applies to real
//! runs: sum compute time over cores vs. bytes over disk bandwidth.
//!
//! Shuffle data moves through in-memory buffers (this is one machine; the
//! paper's network monotasks have no role), so the monotask DAG of a reduce
//! task is *fetch-from-memory → compute → disk write*.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod engine;
pub mod metrics;
pub mod pools;

pub use data::{Record, RecordBlock};
pub use engine::{JobResult, LiveEngine, LiveJob, MapFn, ReduceFn};
pub use metrics::{LiveRecord, LiveResource, LiveSummary, Purpose};
pub use pools::{CpuPool, DiskPool};
