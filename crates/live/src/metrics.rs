//! Wall-clock monotask records for the live runtime.
//!
//! Same shape as the simulator's records, but measured with `Instant` on real
//! hardware: the point of the architecture is that this instrumentation is
//! the execution model, not an add-on.

use std::time::{Duration, Instant};

/// Which thread pool ran the monotask.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LiveResource {
    /// The CPU pool.
    Cpu,
    /// One of the disk threads.
    Disk(usize),
}

/// Why the monotask ran.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Purpose {
    /// Reading a job input block.
    ReadInput,
    /// Reading shuffle data.
    ReadShuffle,
    /// A task's computation.
    Compute,
    /// Writing shuffle output.
    WriteShuffle,
    /// Writing job output.
    WriteOutput,
}

/// One completed live monotask.
#[derive(Clone, Copy, Debug)]
pub struct LiveRecord {
    /// The pool that ran it.
    pub resource: LiveResource,
    /// Why it ran.
    pub purpose: Purpose,
    /// When it entered its pool's queue.
    pub queued: Instant,
    /// When a pool thread began executing it.
    pub started: Instant,
    /// When it completed.
    pub ended: Instant,
    /// Bytes moved (I/O) or processed (compute input).
    pub bytes: usize,
}

impl LiveRecord {
    /// Time spent executing.
    pub fn service(&self) -> Duration {
        self.ended.duration_since(self.started)
    }

    /// Time spent waiting for a pool slot.
    pub fn queue_wait(&self) -> Duration {
        self.started.duration_since(self.queued)
    }
}

/// Aggregate view of a run's records — the live analogue of the simulator's
/// ideal resource times.
#[derive(Clone, Copy, Debug, Default)]
pub struct LiveSummary {
    /// Total compute service time across all compute monotasks.
    pub cpu_busy: Duration,
    /// Total disk service time across all disk monotasks.
    pub disk_busy: Duration,
    /// Bytes read from disk.
    pub disk_read_bytes: usize,
    /// Bytes written to disk.
    pub disk_write_bytes: usize,
    /// Number of monotasks.
    pub monotasks: usize,
}

impl LiveSummary {
    /// Folds records into a summary.
    pub fn from_records(records: &[LiveRecord]) -> LiveSummary {
        let mut s = LiveSummary::default();
        for r in records {
            s.monotasks += 1;
            match r.resource {
                LiveResource::Cpu => s.cpu_busy += r.service(),
                LiveResource::Disk(_) => {
                    s.disk_busy += r.service();
                    match r.purpose {
                        Purpose::ReadInput | Purpose::ReadShuffle => s.disk_read_bytes += r.bytes,
                        Purpose::WriteShuffle | Purpose::WriteOutput => {
                            s.disk_write_bytes += r.bytes
                        }
                        Purpose::Compute => {}
                    }
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_folds_by_resource() {
        let t0 = Instant::now();
        let rec = |resource, purpose, bytes| LiveRecord {
            resource,
            purpose,
            queued: t0,
            started: t0,
            ended: t0 + Duration::from_millis(10),
            bytes,
        };
        let records = vec![
            rec(LiveResource::Cpu, Purpose::Compute, 100),
            rec(LiveResource::Disk(0), Purpose::ReadInput, 1000),
            rec(LiveResource::Disk(1), Purpose::WriteOutput, 500),
        ];
        let s = LiveSummary::from_records(&records);
        assert_eq!(s.monotasks, 3);
        assert_eq!(s.cpu_busy, Duration::from_millis(10));
        assert_eq!(s.disk_busy, Duration::from_millis(20));
        assert_eq!(s.disk_read_bytes, 1000);
        assert_eq!(s.disk_write_bytes, 500);
    }
}
