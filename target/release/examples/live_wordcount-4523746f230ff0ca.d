/root/repo/target/release/examples/live_wordcount-4523746f230ff0ca.d: examples/live_wordcount.rs

/root/repo/target/release/examples/live_wordcount-4523746f230ff0ca: examples/live_wordcount.rs

examples/live_wordcount.rs:
