/root/repo/target/release/examples/autoconfig-22a8faf5228938a5.d: examples/autoconfig.rs

/root/repo/target/release/examples/autoconfig-22a8faf5228938a5: examples/autoconfig.rs

examples/autoconfig.rs:
