/root/repo/target/release/examples/quickstart-90dc2725d6b62d9a.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-90dc2725d6b62d9a: examples/quickstart.rs

examples/quickstart.rs:
