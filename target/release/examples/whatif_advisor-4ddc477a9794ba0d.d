/root/repo/target/release/examples/whatif_advisor-4ddc477a9794ba0d.d: examples/whatif_advisor.rs

/root/repo/target/release/examples/whatif_advisor-4ddc477a9794ba0d: examples/whatif_advisor.rs

examples/whatif_advisor.rs:
