/root/repo/target/release/examples/bottleneck_hunt-6eee593d424e20cf.d: examples/bottleneck_hunt.rs

/root/repo/target/release/examples/bottleneck_hunt-6eee593d424e20cf: examples/bottleneck_hunt.rs

examples/bottleneck_hunt.rs:
