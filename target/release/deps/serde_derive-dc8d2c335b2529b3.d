/root/repo/target/release/deps/serde_derive-dc8d2c335b2529b3.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/serde_derive-dc8d2c335b2529b3: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
