/root/repo/target/release/deps/workloads-d81023465c87c2b9.d: crates/workloads/src/lib.rs crates/workloads/src/bdb.rs crates/workloads/src/ml.rs crates/workloads/src/skew.rs crates/workloads/src/sort.rs crates/workloads/src/wordcount.rs

/root/repo/target/release/deps/workloads-d81023465c87c2b9: crates/workloads/src/lib.rs crates/workloads/src/bdb.rs crates/workloads/src/ml.rs crates/workloads/src/skew.rs crates/workloads/src/sort.rs crates/workloads/src/wordcount.rs

crates/workloads/src/lib.rs:
crates/workloads/src/bdb.rs:
crates/workloads/src/ml.rs:
crates/workloads/src/skew.rs:
crates/workloads/src/sort.rs:
crates/workloads/src/wordcount.rs:
