/root/repo/target/release/deps/abl_head_of_line-71a8d27fa16d3ac1.d: crates/bench/src/bin/abl_head_of_line.rs

/root/repo/target/release/deps/abl_head_of_line-71a8d27fa16d3ac1: crates/bench/src/bin/abl_head_of_line.rs

crates/bench/src/bin/abl_head_of_line.rs:
