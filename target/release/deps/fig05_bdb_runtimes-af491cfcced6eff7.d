/root/repo/target/release/deps/fig05_bdb_runtimes-af491cfcced6eff7.d: crates/bench/src/bin/fig05_bdb_runtimes.rs

/root/repo/target/release/deps/fig05_bdb_runtimes-af491cfcced6eff7: crates/bench/src/bin/fig05_bdb_runtimes.rs

crates/bench/src/bin/fig05_bdb_runtimes.rs:
