/root/repo/target/release/deps/tab_deser_predict-cd559c6d337dc0d2.d: crates/bench/src/bin/tab_deser_predict.rs

/root/repo/target/release/deps/tab_deser_predict-cd559c6d337dc0d2: crates/bench/src/bin/tab_deser_predict.rs

crates/bench/src/bin/tab_deser_predict.rs:
