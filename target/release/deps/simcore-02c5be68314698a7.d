/root/repo/target/release/deps/simcore-02c5be68314698a7.d: crates/simcore/src/lib.rs crates/simcore/src/events.rs crates/simcore/src/maxmin.rs crates/simcore/src/recorder.rs crates/simcore/src/resource.rs crates/simcore/src/time.rs

/root/repo/target/release/deps/simcore-02c5be68314698a7: crates/simcore/src/lib.rs crates/simcore/src/events.rs crates/simcore/src/maxmin.rs crates/simcore/src/recorder.rs crates/simcore/src/resource.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/events.rs:
crates/simcore/src/maxmin.rs:
crates/simcore/src/recorder.rs:
crates/simcore/src/resource.rs:
crates/simcore/src/time.rs:
