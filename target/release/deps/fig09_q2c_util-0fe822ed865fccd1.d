/root/repo/target/release/deps/fig09_q2c_util-0fe822ed865fccd1.d: crates/bench/src/bin/fig09_q2c_util.rs

/root/repo/target/release/deps/fig09_q2c_util-0fe822ed865fccd1: crates/bench/src/bin/fig09_q2c_util.rs

crates/bench/src/bin/fig09_q2c_util.rs:
