/root/repo/target/release/deps/abl_memory_pressure-354d593023c5067a.d: crates/bench/src/bin/abl_memory_pressure.rs

/root/repo/target/release/deps/abl_memory_pressure-354d593023c5067a: crates/bench/src/bin/abl_memory_pressure.rs

crates/bench/src/bin/abl_memory_pressure.rs:
