/root/repo/target/release/deps/fig06_util_boxes-823ec44b19fba800.d: crates/bench/src/bin/fig06_util_boxes.rs

/root/repo/target/release/deps/fig06_util_boxes-823ec44b19fba800: crates/bench/src/bin/fig06_util_boxes.rs

crates/bench/src/bin/fig06_util_boxes.rs:
