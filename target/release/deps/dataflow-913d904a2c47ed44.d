/root/repo/target/release/deps/dataflow-913d904a2c47ed44.d: crates/dataflow/src/lib.rs crates/dataflow/src/blocks.rs crates/dataflow/src/cost.rs crates/dataflow/src/plan.rs crates/dataflow/src/reference.rs crates/dataflow/src/report.rs crates/dataflow/src/stage.rs crates/dataflow/src/types.rs

/root/repo/target/release/deps/dataflow-913d904a2c47ed44: crates/dataflow/src/lib.rs crates/dataflow/src/blocks.rs crates/dataflow/src/cost.rs crates/dataflow/src/plan.rs crates/dataflow/src/reference.rs crates/dataflow/src/report.rs crates/dataflow/src/stage.rs crates/dataflow/src/types.rs

crates/dataflow/src/lib.rs:
crates/dataflow/src/blocks.rs:
crates/dataflow/src/cost.rs:
crates/dataflow/src/plan.rs:
crates/dataflow/src/reference.rs:
crates/dataflow/src/report.rs:
crates/dataflow/src/stage.rs:
crates/dataflow/src/types.rs:
