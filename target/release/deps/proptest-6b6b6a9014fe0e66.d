/root/repo/target/release/deps/proptest-6b6b6a9014fe0e66.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-6b6b6a9014fe0e66.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-6b6b6a9014fe0e66.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
