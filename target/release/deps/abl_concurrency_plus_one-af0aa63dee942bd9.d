/root/repo/target/release/deps/abl_concurrency_plus_one-af0aa63dee942bd9.d: crates/bench/src/bin/abl_concurrency_plus_one.rs

/root/repo/target/release/deps/abl_concurrency_plus_one-af0aa63dee942bd9: crates/bench/src/bin/abl_concurrency_plus_one.rs

crates/bench/src/bin/abl_concurrency_plus_one.rs:
