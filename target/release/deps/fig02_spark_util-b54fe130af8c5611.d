/root/repo/target/release/deps/fig02_spark_util-b54fe130af8c5611.d: crates/bench/src/bin/fig02_spark_util.rs

/root/repo/target/release/deps/fig02_spark_util-b54fe130af8c5611: crates/bench/src/bin/fig02_spark_util.rs

crates/bench/src/bin/fig02_spark_util.rs:
