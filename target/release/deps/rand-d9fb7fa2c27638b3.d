/root/repo/target/release/deps/rand-d9fb7fa2c27638b3.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-d9fb7fa2c27638b3.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-d9fb7fa2c27638b3.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
