/root/repo/target/release/deps/abl_net_outstanding-2c2bb229973923e4.d: crates/bench/src/bin/abl_net_outstanding.rs

/root/repo/target/release/deps/abl_net_outstanding-2c2bb229973923e4: crates/bench/src/bin/abl_net_outstanding.rs

crates/bench/src/bin/abl_net_outstanding.rs:
