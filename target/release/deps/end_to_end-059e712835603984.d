/root/repo/target/release/deps/end_to_end-059e712835603984.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-059e712835603984: tests/end_to_end.rs

tests/end_to_end.rs:
