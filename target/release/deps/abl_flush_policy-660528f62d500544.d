/root/repo/target/release/deps/abl_flush_policy-660528f62d500544.d: crates/bench/src/bin/abl_flush_policy.rs

/root/repo/target/release/deps/abl_flush_policy-660528f62d500544: crates/bench/src/bin/abl_flush_policy.rs

crates/bench/src/bin/abl_flush_policy.rs:
