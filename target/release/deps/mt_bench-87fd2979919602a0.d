/root/repo/target/release/deps/mt_bench-87fd2979919602a0.d: crates/bench/src/lib.rs crates/bench/src/ascii.rs

/root/repo/target/release/deps/libmt_bench-87fd2979919602a0.rlib: crates/bench/src/lib.rs crates/bench/src/ascii.rs

/root/repo/target/release/deps/libmt_bench-87fd2979919602a0.rmeta: crates/bench/src/lib.rs crates/bench/src/ascii.rs

crates/bench/src/lib.rs:
crates/bench/src/ascii.rs:
