/root/repo/target/release/deps/calibration-18c8ab50ceb0bdcb.d: crates/bench/src/bin/calibration.rs

/root/repo/target/release/deps/calibration-18c8ab50ceb0bdcb: crates/bench/src/bin/calibration.rs

crates/bench/src/bin/calibration.rs:
