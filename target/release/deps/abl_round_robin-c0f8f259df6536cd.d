/root/repo/target/release/deps/abl_round_robin-c0f8f259df6536cd.d: crates/bench/src/bin/abl_round_robin.rs

/root/repo/target/release/deps/abl_round_robin-c0f8f259df6536cd: crates/bench/src/bin/abl_round_robin.rs

crates/bench/src/bin/abl_round_robin.rs:
