/root/repo/target/release/deps/abl_net_outstanding-ed97ed20758f1158.d: crates/bench/src/bin/abl_net_outstanding.rs

/root/repo/target/release/deps/abl_net_outstanding-ed97ed20758f1158: crates/bench/src/bin/abl_net_outstanding.rs

crates/bench/src/bin/abl_net_outstanding.rs:
