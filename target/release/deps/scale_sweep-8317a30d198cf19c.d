/root/repo/target/release/deps/scale_sweep-8317a30d198cf19c.d: crates/bench/src/bin/scale_sweep.rs

/root/repo/target/release/deps/scale_sweep-8317a30d198cf19c: crates/bench/src/bin/scale_sweep.rs

crates/bench/src/bin/scale_sweep.rs:
