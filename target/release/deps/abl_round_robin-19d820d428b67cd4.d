/root/repo/target/release/deps/abl_round_robin-19d820d428b67cd4.d: crates/bench/src/bin/abl_round_robin.rs

/root/repo/target/release/deps/abl_round_robin-19d820d428b67cd4: crates/bench/src/bin/abl_round_robin.rs

crates/bench/src/bin/abl_round_robin.rs:
