/root/repo/target/release/deps/serde-1b6dff2ea16a8d83.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/serde-1b6dff2ea16a8d83: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
