/root/repo/target/release/deps/sparklike-ec91485e7728bd6f.d: crates/sparklike/src/lib.rs crates/sparklike/src/executor.rs

/root/repo/target/release/deps/libsparklike-ec91485e7728bd6f.rlib: crates/sparklike/src/lib.rs crates/sparklike/src/executor.rs

/root/repo/target/release/deps/libsparklike-ec91485e7728bd6f.rmeta: crates/sparklike/src/lib.rs crates/sparklike/src/executor.rs

crates/sparklike/src/lib.rs:
crates/sparklike/src/executor.rs:
