/root/repo/target/release/deps/abl_concurrency_plus_one-526ae631a364faf2.d: crates/bench/src/bin/abl_concurrency_plus_one.rs

/root/repo/target/release/deps/abl_concurrency_plus_one-526ae631a364faf2: crates/bench/src/bin/abl_concurrency_plus_one.rs

crates/bench/src/bin/abl_concurrency_plus_one.rs:
