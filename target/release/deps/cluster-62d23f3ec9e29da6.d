/root/repo/target/release/deps/cluster-62d23f3ec9e29da6.d: crates/cluster/src/lib.rs crates/cluster/src/cache.rs crates/cluster/src/fluid.rs crates/cluster/src/hw.rs crates/cluster/src/trace.rs

/root/repo/target/release/deps/libcluster-62d23f3ec9e29da6.rlib: crates/cluster/src/lib.rs crates/cluster/src/cache.rs crates/cluster/src/fluid.rs crates/cluster/src/hw.rs crates/cluster/src/trace.rs

/root/repo/target/release/deps/libcluster-62d23f3ec9e29da6.rmeta: crates/cluster/src/lib.rs crates/cluster/src/cache.rs crates/cluster/src/fluid.rs crates/cluster/src/hw.rs crates/cluster/src/trace.rs

crates/cluster/src/lib.rs:
crates/cluster/src/cache.rs:
crates/cluster/src/fluid.rs:
crates/cluster/src/hw.rs:
crates/cluster/src/trace.rs:
