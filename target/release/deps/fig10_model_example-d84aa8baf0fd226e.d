/root/repo/target/release/deps/fig10_model_example-d84aa8baf0fd226e.d: crates/bench/src/bin/fig10_model_example.rs

/root/repo/target/release/deps/fig10_model_example-d84aa8baf0fd226e: crates/bench/src/bin/fig10_model_example.rs

crates/bench/src/bin/fig10_model_example.rs:
