/root/repo/target/release/deps/engine-19c8c346700d6b8e.d: crates/bench/benches/engine.rs

/root/repo/target/release/deps/engine-19c8c346700d6b8e: crates/bench/benches/engine.rs

crates/bench/benches/engine.rs:
