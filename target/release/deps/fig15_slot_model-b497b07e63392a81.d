/root/repo/target/release/deps/fig15_slot_model-b497b07e63392a81.d: crates/bench/src/bin/fig15_slot_model.rs

/root/repo/target/release/deps/fig15_slot_model-b497b07e63392a81: crates/bench/src/bin/fig15_slot_model.rs

crates/bench/src/bin/fig15_slot_model.rs:
