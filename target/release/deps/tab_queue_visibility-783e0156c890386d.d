/root/repo/target/release/deps/tab_queue_visibility-783e0156c890386d.d: crates/bench/src/bin/tab_queue_visibility.rs

/root/repo/target/release/deps/tab_queue_visibility-783e0156c890386d: crates/bench/src/bin/tab_queue_visibility.rs

crates/bench/src/bin/tab_queue_visibility.rs:
