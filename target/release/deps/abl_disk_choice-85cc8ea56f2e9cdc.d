/root/repo/target/release/deps/abl_disk_choice-85cc8ea56f2e9cdc.d: crates/bench/src/bin/abl_disk_choice.rs

/root/repo/target/release/deps/abl_disk_choice-85cc8ea56f2e9cdc: crates/bench/src/bin/abl_disk_choice.rs

crates/bench/src/bin/abl_disk_choice.rs:
