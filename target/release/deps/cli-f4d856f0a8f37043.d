/root/repo/target/release/deps/cli-f4d856f0a8f37043.d: tests/cli.rs

/root/repo/target/release/deps/cli-f4d856f0a8f37043: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_monotasks-sim=/root/repo/target/release/monotasks-sim
