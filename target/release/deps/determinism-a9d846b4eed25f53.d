/root/repo/target/release/deps/determinism-a9d846b4eed25f53.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-a9d846b4eed25f53: tests/determinism.rs

tests/determinism.rs:
