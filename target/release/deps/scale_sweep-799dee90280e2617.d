/root/repo/target/release/deps/scale_sweep-799dee90280e2617.d: crates/bench/src/bin/scale_sweep.rs

/root/repo/target/release/deps/scale_sweep-799dee90280e2617: crates/bench/src/bin/scale_sweep.rs

crates/bench/src/bin/scale_sweep.rs:
