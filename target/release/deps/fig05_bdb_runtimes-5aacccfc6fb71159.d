/root/repo/target/release/deps/fig05_bdb_runtimes-5aacccfc6fb71159.d: crates/bench/src/bin/fig05_bdb_runtimes.rs

/root/repo/target/release/deps/fig05_bdb_runtimes-5aacccfc6fb71159: crates/bench/src/bin/fig05_bdb_runtimes.rs

crates/bench/src/bin/fig05_bdb_runtimes.rs:
