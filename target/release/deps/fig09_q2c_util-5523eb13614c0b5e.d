/root/repo/target/release/deps/fig09_q2c_util-5523eb13614c0b5e.d: crates/bench/src/bin/fig09_q2c_util.rs

/root/repo/target/release/deps/fig09_q2c_util-5523eb13614c0b5e: crates/bench/src/bin/fig09_q2c_util.rs

crates/bench/src/bin/fig09_q2c_util.rs:
