/root/repo/target/release/deps/fig17_spark_model-fe645ff8563eb7cb.d: crates/bench/src/bin/fig17_spark_model.rs

/root/repo/target/release/deps/fig17_spark_model-fe645ff8563eb7cb: crates/bench/src/bin/fig17_spark_model.rs

crates/bench/src/bin/fig17_spark_model.rs:
