/root/repo/target/release/deps/fig13_predict_migration-d0c096d2a770f115.d: crates/bench/src/bin/fig13_predict_migration.rs

/root/repo/target/release/deps/fig13_predict_migration-d0c096d2a770f115: crates/bench/src/bin/fig13_predict_migration.rs

crates/bench/src/bin/fig13_predict_migration.rs:
