/root/repo/target/release/deps/fig15_slot_model-11ba5e8adfeedf14.d: crates/bench/src/bin/fig15_slot_model.rs

/root/repo/target/release/deps/fig15_slot_model-11ba5e8adfeedf14: crates/bench/src/bin/fig15_slot_model.rs

crates/bench/src/bin/fig15_slot_model.rs:
