/root/repo/target/release/deps/abl_flush_policy-4c856e9b5fe672cf.d: crates/bench/src/bin/abl_flush_policy.rs

/root/repo/target/release/deps/abl_flush_policy-4c856e9b5fe672cf: crates/bench/src/bin/abl_flush_policy.rs

crates/bench/src/bin/abl_flush_policy.rs:
