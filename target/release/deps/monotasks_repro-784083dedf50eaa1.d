/root/repo/target/release/deps/monotasks_repro-784083dedf50eaa1.d: src/lib.rs

/root/repo/target/release/deps/libmonotasks_repro-784083dedf50eaa1.rlib: src/lib.rs

/root/repo/target/release/deps/libmonotasks_repro-784083dedf50eaa1.rmeta: src/lib.rs

src/lib.rs:
