/root/repo/target/release/deps/fig17_spark_model-5766b06101c9d55d.d: crates/bench/src/bin/fig17_spark_model.rs

/root/repo/target/release/deps/fig17_spark_model-5766b06101c9d55d: crates/bench/src/bin/fig17_spark_model.rs

crates/bench/src/bin/fig17_spark_model.rs:
