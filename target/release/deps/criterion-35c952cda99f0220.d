/root/repo/target/release/deps/criterion-35c952cda99f0220.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-35c952cda99f0220: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
