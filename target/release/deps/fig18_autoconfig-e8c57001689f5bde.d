/root/repo/target/release/deps/fig18_autoconfig-e8c57001689f5bde.d: crates/bench/src/bin/fig18_autoconfig.rs

/root/repo/target/release/deps/fig18_autoconfig-e8c57001689f5bde: crates/bench/src/bin/fig18_autoconfig.rs

crates/bench/src/bin/fig18_autoconfig.rs:
