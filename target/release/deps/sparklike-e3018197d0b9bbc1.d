/root/repo/target/release/deps/sparklike-e3018197d0b9bbc1.d: crates/sparklike/src/lib.rs crates/sparklike/src/executor.rs

/root/repo/target/release/deps/sparklike-e3018197d0b9bbc1: crates/sparklike/src/lib.rs crates/sparklike/src/executor.rs

crates/sparklike/src/lib.rs:
crates/sparklike/src/executor.rs:
