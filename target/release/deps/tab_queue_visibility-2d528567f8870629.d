/root/repo/target/release/deps/tab_queue_visibility-2d528567f8870629.d: crates/bench/src/bin/tab_queue_visibility.rs

/root/repo/target/release/deps/tab_queue_visibility-2d528567f8870629: crates/bench/src/bin/tab_queue_visibility.rs

crates/bench/src/bin/tab_queue_visibility.rs:
