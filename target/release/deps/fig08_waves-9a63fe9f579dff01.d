/root/repo/target/release/deps/fig08_waves-9a63fe9f579dff01.d: crates/bench/src/bin/fig08_waves.rs

/root/repo/target/release/deps/fig08_waves-9a63fe9f579dff01: crates/bench/src/bin/fig08_waves.rs

crates/bench/src/bin/fig08_waves.rs:
