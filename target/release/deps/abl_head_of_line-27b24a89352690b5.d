/root/repo/target/release/deps/abl_head_of_line-27b24a89352690b5.d: crates/bench/src/bin/abl_head_of_line.rs

/root/repo/target/release/deps/abl_head_of_line-27b24a89352690b5: crates/bench/src/bin/abl_head_of_line.rs

crates/bench/src/bin/abl_head_of_line.rs:
