/root/repo/target/release/deps/perfmodel-12d2369ab31eba98.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/bottleneck.rs crates/perfmodel/src/imbalance.rs crates/perfmodel/src/model.rs crates/perfmodel/src/profile.rs crates/perfmodel/src/strawman.rs

/root/repo/target/release/deps/libperfmodel-12d2369ab31eba98.rlib: crates/perfmodel/src/lib.rs crates/perfmodel/src/bottleneck.rs crates/perfmodel/src/imbalance.rs crates/perfmodel/src/model.rs crates/perfmodel/src/profile.rs crates/perfmodel/src/strawman.rs

/root/repo/target/release/deps/libperfmodel-12d2369ab31eba98.rmeta: crates/perfmodel/src/lib.rs crates/perfmodel/src/bottleneck.rs crates/perfmodel/src/imbalance.rs crates/perfmodel/src/model.rs crates/perfmodel/src/profile.rs crates/perfmodel/src/strawman.rs

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/bottleneck.rs:
crates/perfmodel/src/imbalance.rs:
crates/perfmodel/src/model.rs:
crates/perfmodel/src/profile.rs:
crates/perfmodel/src/strawman.rs:
