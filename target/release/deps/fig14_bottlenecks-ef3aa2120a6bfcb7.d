/root/repo/target/release/deps/fig14_bottlenecks-ef3aa2120a6bfcb7.d: crates/bench/src/bin/fig14_bottlenecks.rs

/root/repo/target/release/deps/fig14_bottlenecks-ef3aa2120a6bfcb7: crates/bench/src/bin/fig14_bottlenecks.rs

crates/bench/src/bin/fig14_bottlenecks.rs:
