/root/repo/target/release/deps/monotasks_live-dd6857ffb5a5c25f.d: crates/live/src/lib.rs crates/live/src/data.rs crates/live/src/engine.rs crates/live/src/metrics.rs crates/live/src/pools.rs

/root/repo/target/release/deps/libmonotasks_live-dd6857ffb5a5c25f.rlib: crates/live/src/lib.rs crates/live/src/data.rs crates/live/src/engine.rs crates/live/src/metrics.rs crates/live/src/pools.rs

/root/repo/target/release/deps/libmonotasks_live-dd6857ffb5a5c25f.rmeta: crates/live/src/lib.rs crates/live/src/data.rs crates/live/src/engine.rs crates/live/src/metrics.rs crates/live/src/pools.rs

crates/live/src/lib.rs:
crates/live/src/data.rs:
crates/live/src/engine.rs:
crates/live/src/metrics.rs:
crates/live/src/pools.rs:
