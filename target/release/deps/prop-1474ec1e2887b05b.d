/root/repo/target/release/deps/prop-1474ec1e2887b05b.d: crates/simcore/tests/prop.rs

/root/repo/target/release/deps/prop-1474ec1e2887b05b: crates/simcore/tests/prop.rs

crates/simcore/tests/prop.rs:
