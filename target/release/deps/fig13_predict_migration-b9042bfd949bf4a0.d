/root/repo/target/release/deps/fig13_predict_migration-b9042bfd949bf4a0.d: crates/bench/src/bin/fig13_predict_migration.rs

/root/repo/target/release/deps/fig13_predict_migration-b9042bfd949bf4a0: crates/bench/src/bin/fig13_predict_migration.rs

crates/bench/src/bin/fig13_predict_migration.rs:
