/root/repo/target/release/deps/rand-c4fc6a9f09921f3d.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/rand-c4fc6a9f09921f3d: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
