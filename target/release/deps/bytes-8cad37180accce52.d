/root/repo/target/release/deps/bytes-8cad37180accce52.d: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/bytes-8cad37180accce52: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
