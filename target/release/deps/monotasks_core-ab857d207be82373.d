/root/repo/target/release/deps/monotasks_core-ab857d207be82373.d: crates/core/src/lib.rs crates/core/src/decompose.rs crates/core/src/executor.rs crates/core/src/metrics.rs crates/core/src/monotask.rs crates/core/src/scheduler.rs

/root/repo/target/release/deps/libmonotasks_core-ab857d207be82373.rlib: crates/core/src/lib.rs crates/core/src/decompose.rs crates/core/src/executor.rs crates/core/src/metrics.rs crates/core/src/monotask.rs crates/core/src/scheduler.rs

/root/repo/target/release/deps/libmonotasks_core-ab857d207be82373.rmeta: crates/core/src/lib.rs crates/core/src/decompose.rs crates/core/src/executor.rs crates/core/src/metrics.rs crates/core/src/monotask.rs crates/core/src/scheduler.rs

crates/core/src/lib.rs:
crates/core/src/decompose.rs:
crates/core/src/executor.rs:
crates/core/src/metrics.rs:
crates/core/src/monotask.rs:
crates/core/src/scheduler.rs:
