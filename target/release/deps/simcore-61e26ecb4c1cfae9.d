/root/repo/target/release/deps/simcore-61e26ecb4c1cfae9.d: crates/simcore/src/lib.rs crates/simcore/src/events.rs crates/simcore/src/maxmin.rs crates/simcore/src/recorder.rs crates/simcore/src/resource.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/release/deps/libsimcore-61e26ecb4c1cfae9.rlib: crates/simcore/src/lib.rs crates/simcore/src/events.rs crates/simcore/src/maxmin.rs crates/simcore/src/recorder.rs crates/simcore/src/resource.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/release/deps/libsimcore-61e26ecb4c1cfae9.rmeta: crates/simcore/src/lib.rs crates/simcore/src/events.rs crates/simcore/src/maxmin.rs crates/simcore/src/recorder.rs crates/simcore/src/resource.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/events.rs:
crates/simcore/src/maxmin.rs:
crates/simcore/src/recorder.rs:
crates/simcore/src/resource.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
