/root/repo/target/release/deps/workloads-94127f624ecea6dc.d: crates/workloads/src/lib.rs crates/workloads/src/bdb.rs crates/workloads/src/ml.rs crates/workloads/src/skew.rs crates/workloads/src/sort.rs crates/workloads/src/wordcount.rs

/root/repo/target/release/deps/libworkloads-94127f624ecea6dc.rlib: crates/workloads/src/lib.rs crates/workloads/src/bdb.rs crates/workloads/src/ml.rs crates/workloads/src/skew.rs crates/workloads/src/sort.rs crates/workloads/src/wordcount.rs

/root/repo/target/release/deps/libworkloads-94127f624ecea6dc.rmeta: crates/workloads/src/lib.rs crates/workloads/src/bdb.rs crates/workloads/src/ml.rs crates/workloads/src/skew.rs crates/workloads/src/sort.rs crates/workloads/src/wordcount.rs

crates/workloads/src/lib.rs:
crates/workloads/src/bdb.rs:
crates/workloads/src/ml.rs:
crates/workloads/src/skew.rs:
crates/workloads/src/sort.rs:
crates/workloads/src/wordcount.rs:
