/root/repo/target/release/deps/live_jobs-1087a6f0d3e7d1ff.d: crates/live/tests/live_jobs.rs

/root/repo/target/release/deps/live_jobs-1087a6f0d3e7d1ff: crates/live/tests/live_jobs.rs

crates/live/tests/live_jobs.rs:
