/root/repo/target/release/deps/proptest-a042e8b77e9526b4.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-a042e8b77e9526b4: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
