/root/repo/target/release/deps/fig14_bottlenecks-7670e2e78318f008.d: crates/bench/src/bin/fig14_bottlenecks.rs

/root/repo/target/release/deps/fig14_bottlenecks-7670e2e78318f008: crates/bench/src/bin/fig14_bottlenecks.rs

crates/bench/src/bin/fig14_bottlenecks.rs:
