/root/repo/target/release/deps/crossbeam-98a07caa0bd86009.d: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/crossbeam-98a07caa0bd86009: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
