/root/repo/target/release/deps/fig16_attribution-dbc7c55990f9e617.d: crates/bench/src/bin/fig16_attribution.rs

/root/repo/target/release/deps/fig16_attribution-dbc7c55990f9e617: crates/bench/src/bin/fig16_attribution.rs

crates/bench/src/bin/fig16_attribution.rs:
