/root/repo/target/release/deps/fig08_waves-1135473a6868bcca.d: crates/bench/src/bin/fig08_waves.rs

/root/repo/target/release/deps/fig08_waves-1135473a6868bcca: crates/bench/src/bin/fig08_waves.rs

crates/bench/src/bin/fig08_waves.rs:
