/root/repo/target/release/deps/prop-eeafd83caaec22b8.d: crates/cluster/tests/prop.rs

/root/repo/target/release/deps/prop-eeafd83caaec22b8: crates/cluster/tests/prop.rs

crates/cluster/tests/prop.rs:
