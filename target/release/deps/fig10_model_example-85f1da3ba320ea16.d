/root/repo/target/release/deps/fig10_model_example-85f1da3ba320ea16.d: crates/bench/src/bin/fig10_model_example.rs

/root/repo/target/release/deps/fig10_model_example-85f1da3ba320ea16: crates/bench/src/bin/fig10_model_example.rs

crates/bench/src/bin/fig10_model_example.rs:
