/root/repo/target/release/deps/serde-29ded6c5b3653cfa.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-29ded6c5b3653cfa.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-29ded6c5b3653cfa.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
