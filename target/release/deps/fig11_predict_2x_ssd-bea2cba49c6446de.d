/root/repo/target/release/deps/fig11_predict_2x_ssd-bea2cba49c6446de.d: crates/bench/src/bin/fig11_predict_2x_ssd.rs

/root/repo/target/release/deps/fig11_predict_2x_ssd-bea2cba49c6446de: crates/bench/src/bin/fig11_predict_2x_ssd.rs

crates/bench/src/bin/fig11_predict_2x_ssd.rs:
