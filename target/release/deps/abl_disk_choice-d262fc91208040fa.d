/root/repo/target/release/deps/abl_disk_choice-d262fc91208040fa.d: crates/bench/src/bin/abl_disk_choice.rs

/root/repo/target/release/deps/abl_disk_choice-d262fc91208040fa: crates/bench/src/bin/abl_disk_choice.rs

crates/bench/src/bin/abl_disk_choice.rs:
