/root/repo/target/release/deps/tab_tungsten_whatif-51e93dc9e84e077a.d: crates/bench/src/bin/tab_tungsten_whatif.rs

/root/repo/target/release/deps/tab_tungsten_whatif-51e93dc9e84e077a: crates/bench/src/bin/tab_tungsten_whatif.rs

crates/bench/src/bin/tab_tungsten_whatif.rs:
