/root/repo/target/release/deps/bytes-ffe638e0dfd21cbd.d: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-ffe638e0dfd21cbd.rlib: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-ffe638e0dfd21cbd.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
