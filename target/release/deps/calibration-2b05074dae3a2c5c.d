/root/repo/target/release/deps/calibration-2b05074dae3a2c5c.d: crates/bench/src/bin/calibration.rs

/root/repo/target/release/deps/calibration-2b05074dae3a2c5c: crates/bench/src/bin/calibration.rs

crates/bench/src/bin/calibration.rs:
