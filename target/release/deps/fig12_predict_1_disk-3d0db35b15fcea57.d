/root/repo/target/release/deps/fig12_predict_1_disk-3d0db35b15fcea57.d: crates/bench/src/bin/fig12_predict_1_disk.rs

/root/repo/target/release/deps/fig12_predict_1_disk-3d0db35b15fcea57: crates/bench/src/bin/fig12_predict_1_disk.rs

crates/bench/src/bin/fig12_predict_1_disk.rs:
