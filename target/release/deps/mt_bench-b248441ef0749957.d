/root/repo/target/release/deps/mt_bench-b248441ef0749957.d: crates/bench/src/lib.rs crates/bench/src/ascii.rs

/root/repo/target/release/deps/mt_bench-b248441ef0749957: crates/bench/src/lib.rs crates/bench/src/ascii.rs

crates/bench/src/lib.rs:
crates/bench/src/ascii.rs:
