/root/repo/target/release/deps/abl_network_model-c00abcf53402209c.d: crates/bench/src/bin/abl_network_model.rs

/root/repo/target/release/deps/abl_network_model-c00abcf53402209c: crates/bench/src/bin/abl_network_model.rs

crates/bench/src/bin/abl_network_model.rs:
