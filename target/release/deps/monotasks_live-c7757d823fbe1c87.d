/root/repo/target/release/deps/monotasks_live-c7757d823fbe1c87.d: crates/live/src/lib.rs crates/live/src/data.rs crates/live/src/engine.rs crates/live/src/metrics.rs crates/live/src/pools.rs

/root/repo/target/release/deps/monotasks_live-c7757d823fbe1c87: crates/live/src/lib.rs crates/live/src/data.rs crates/live/src/engine.rs crates/live/src/metrics.rs crates/live/src/pools.rs

crates/live/src/lib.rs:
crates/live/src/data.rs:
crates/live/src/engine.rs:
crates/live/src/metrics.rs:
crates/live/src/pools.rs:
