/root/repo/target/release/deps/tab_sort_hdd-7cf30284ba65f7c1.d: crates/bench/src/bin/tab_sort_hdd.rs

/root/repo/target/release/deps/tab_sort_hdd-7cf30284ba65f7c1: crates/bench/src/bin/tab_sort_hdd.rs

crates/bench/src/bin/tab_sort_hdd.rs:
