/root/repo/target/release/deps/fig18_autoconfig-7664e4aae08d083f.d: crates/bench/src/bin/fig18_autoconfig.rs

/root/repo/target/release/deps/fig18_autoconfig-7664e4aae08d083f: crates/bench/src/bin/fig18_autoconfig.rs

crates/bench/src/bin/fig18_autoconfig.rs:
