/root/repo/target/release/deps/tab_deser_predict-81a1286a9e11eb56.d: crates/bench/src/bin/tab_deser_predict.rs

/root/repo/target/release/deps/tab_deser_predict-81a1286a9e11eb56: crates/bench/src/bin/tab_deser_predict.rs

crates/bench/src/bin/tab_deser_predict.rs:
