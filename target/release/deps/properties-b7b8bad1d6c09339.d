/root/repo/target/release/deps/properties-b7b8bad1d6c09339.d: tests/properties.rs

/root/repo/target/release/deps/properties-b7b8bad1d6c09339: tests/properties.rs

tests/properties.rs:
