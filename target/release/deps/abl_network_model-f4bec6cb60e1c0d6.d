/root/repo/target/release/deps/abl_network_model-f4bec6cb60e1c0d6.d: crates/bench/src/bin/abl_network_model.rs

/root/repo/target/release/deps/abl_network_model-f4bec6cb60e1c0d6: crates/bench/src/bin/abl_network_model.rs

crates/bench/src/bin/abl_network_model.rs:
