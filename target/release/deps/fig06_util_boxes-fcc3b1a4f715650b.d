/root/repo/target/release/deps/fig06_util_boxes-fcc3b1a4f715650b.d: crates/bench/src/bin/fig06_util_boxes.rs

/root/repo/target/release/deps/fig06_util_boxes-fcc3b1a4f715650b: crates/bench/src/bin/fig06_util_boxes.rs

crates/bench/src/bin/fig06_util_boxes.rs:
