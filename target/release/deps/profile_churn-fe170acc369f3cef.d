/root/repo/target/release/deps/profile_churn-fe170acc369f3cef.d: crates/bench/src/bin/profile_churn.rs

/root/repo/target/release/deps/profile_churn-fe170acc369f3cef: crates/bench/src/bin/profile_churn.rs

crates/bench/src/bin/profile_churn.rs:
