/root/repo/target/release/deps/perfmodel-2834a3db742e33ea.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/bottleneck.rs crates/perfmodel/src/imbalance.rs crates/perfmodel/src/model.rs crates/perfmodel/src/profile.rs crates/perfmodel/src/strawman.rs

/root/repo/target/release/deps/perfmodel-2834a3db742e33ea: crates/perfmodel/src/lib.rs crates/perfmodel/src/bottleneck.rs crates/perfmodel/src/imbalance.rs crates/perfmodel/src/model.rs crates/perfmodel/src/profile.rs crates/perfmodel/src/strawman.rs

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/bottleneck.rs:
crates/perfmodel/src/imbalance.rs:
crates/perfmodel/src/model.rs:
crates/perfmodel/src/profile.rs:
crates/perfmodel/src/strawman.rs:
