/root/repo/target/release/deps/fig02_spark_util-118e68a51562ab72.d: crates/bench/src/bin/fig02_spark_util.rs

/root/repo/target/release/deps/fig02_spark_util-118e68a51562ab72: crates/bench/src/bin/fig02_spark_util.rs

crates/bench/src/bin/fig02_spark_util.rs:
