/root/repo/target/release/deps/dataflow-23c40e9a7bfaa2b5.d: crates/dataflow/src/lib.rs crates/dataflow/src/blocks.rs crates/dataflow/src/cost.rs crates/dataflow/src/plan.rs crates/dataflow/src/reference.rs crates/dataflow/src/report.rs crates/dataflow/src/stage.rs crates/dataflow/src/types.rs

/root/repo/target/release/deps/libdataflow-23c40e9a7bfaa2b5.rlib: crates/dataflow/src/lib.rs crates/dataflow/src/blocks.rs crates/dataflow/src/cost.rs crates/dataflow/src/plan.rs crates/dataflow/src/reference.rs crates/dataflow/src/report.rs crates/dataflow/src/stage.rs crates/dataflow/src/types.rs

/root/repo/target/release/deps/libdataflow-23c40e9a7bfaa2b5.rmeta: crates/dataflow/src/lib.rs crates/dataflow/src/blocks.rs crates/dataflow/src/cost.rs crates/dataflow/src/plan.rs crates/dataflow/src/reference.rs crates/dataflow/src/report.rs crates/dataflow/src/stage.rs crates/dataflow/src/types.rs

crates/dataflow/src/lib.rs:
crates/dataflow/src/blocks.rs:
crates/dataflow/src/cost.rs:
crates/dataflow/src/plan.rs:
crates/dataflow/src/reference.rs:
crates/dataflow/src/report.rs:
crates/dataflow/src/stage.rs:
crates/dataflow/src/types.rs:
