/root/repo/target/release/deps/parking_lot-6aab020bb9d41bda.d: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/parking_lot-6aab020bb9d41bda: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
