/root/repo/target/release/deps/fig12_predict_1_disk-c52547353ac9c01b.d: crates/bench/src/bin/fig12_predict_1_disk.rs

/root/repo/target/release/deps/fig12_predict_1_disk-c52547353ac9c01b: crates/bench/src/bin/fig12_predict_1_disk.rs

crates/bench/src/bin/fig12_predict_1_disk.rs:
