/root/repo/target/release/deps/monotasks_sim-26b069a8bdea420e.d: src/bin/monotasks-sim.rs

/root/repo/target/release/deps/monotasks_sim-26b069a8bdea420e: src/bin/monotasks-sim.rs

src/bin/monotasks-sim.rs:
