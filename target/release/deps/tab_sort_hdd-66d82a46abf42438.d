/root/repo/target/release/deps/tab_sort_hdd-66d82a46abf42438.d: crates/bench/src/bin/tab_sort_hdd.rs

/root/repo/target/release/deps/tab_sort_hdd-66d82a46abf42438: crates/bench/src/bin/tab_sort_hdd.rs

crates/bench/src/bin/tab_sort_hdd.rs:
