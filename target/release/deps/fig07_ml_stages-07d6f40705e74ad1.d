/root/repo/target/release/deps/fig07_ml_stages-07d6f40705e74ad1.d: crates/bench/src/bin/fig07_ml_stages.rs

/root/repo/target/release/deps/fig07_ml_stages-07d6f40705e74ad1: crates/bench/src/bin/fig07_ml_stages.rs

crates/bench/src/bin/fig07_ml_stages.rs:
