/root/repo/target/release/deps/fig11_predict_2x_ssd-0795ca8b3d164c59.d: crates/bench/src/bin/fig11_predict_2x_ssd.rs

/root/repo/target/release/deps/fig11_predict_2x_ssd-0795ca8b3d164c59: crates/bench/src/bin/fig11_predict_2x_ssd.rs

crates/bench/src/bin/fig11_predict_2x_ssd.rs:
