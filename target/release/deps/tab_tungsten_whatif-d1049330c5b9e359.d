/root/repo/target/release/deps/tab_tungsten_whatif-d1049330c5b9e359.d: crates/bench/src/bin/tab_tungsten_whatif.rs

/root/repo/target/release/deps/tab_tungsten_whatif-d1049330c5b9e359: crates/bench/src/bin/tab_tungsten_whatif.rs

crates/bench/src/bin/tab_tungsten_whatif.rs:
