/root/repo/target/release/deps/abl_ssd_qd-ac04894ede910f2f.d: crates/bench/src/bin/abl_ssd_qd.rs

/root/repo/target/release/deps/abl_ssd_qd-ac04894ede910f2f: crates/bench/src/bin/abl_ssd_qd.rs

crates/bench/src/bin/abl_ssd_qd.rs:
