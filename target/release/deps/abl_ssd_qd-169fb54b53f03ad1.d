/root/repo/target/release/deps/abl_ssd_qd-169fb54b53f03ad1.d: crates/bench/src/bin/abl_ssd_qd.rs

/root/repo/target/release/deps/abl_ssd_qd-169fb54b53f03ad1: crates/bench/src/bin/abl_ssd_qd.rs

crates/bench/src/bin/abl_ssd_qd.rs:
