/root/repo/target/release/deps/parking_lot-279669df123142d9.d: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-279669df123142d9.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-279669df123142d9.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
