/root/repo/target/release/deps/monotasks_sim-69a20e6b5f7ee755.d: src/bin/monotasks-sim.rs

/root/repo/target/release/deps/monotasks_sim-69a20e6b5f7ee755: src/bin/monotasks-sim.rs

src/bin/monotasks-sim.rs:
