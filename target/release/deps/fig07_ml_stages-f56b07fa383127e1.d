/root/repo/target/release/deps/fig07_ml_stages-f56b07fa383127e1.d: crates/bench/src/bin/fig07_ml_stages.rs

/root/repo/target/release/deps/fig07_ml_stages-f56b07fa383127e1: crates/bench/src/bin/fig07_ml_stages.rs

crates/bench/src/bin/fig07_ml_stages.rs:
