/root/repo/target/release/deps/fig16_attribution-c1d0f910745da1f9.d: crates/bench/src/bin/fig16_attribution.rs

/root/repo/target/release/deps/fig16_attribution-c1d0f910745da1f9: crates/bench/src/bin/fig16_attribution.rs

crates/bench/src/bin/fig16_attribution.rs:
