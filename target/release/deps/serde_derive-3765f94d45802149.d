/root/repo/target/release/deps/serde_derive-3765f94d45802149.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-3765f94d45802149.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
