/root/repo/target/release/deps/monotasks_core-ac210da2517ad875.d: crates/core/src/lib.rs crates/core/src/decompose.rs crates/core/src/executor.rs crates/core/src/metrics.rs crates/core/src/monotask.rs crates/core/src/scheduler.rs

/root/repo/target/release/deps/monotasks_core-ac210da2517ad875: crates/core/src/lib.rs crates/core/src/decompose.rs crates/core/src/executor.rs crates/core/src/metrics.rs crates/core/src/monotask.rs crates/core/src/scheduler.rs

crates/core/src/lib.rs:
crates/core/src/decompose.rs:
crates/core/src/executor.rs:
crates/core/src/metrics.rs:
crates/core/src/monotask.rs:
crates/core/src/scheduler.rs:
