/root/repo/target/release/deps/engine-945cf1636dcd2efd.d: crates/bench/benches/engine.rs

/root/repo/target/release/deps/engine-945cf1636dcd2efd: crates/bench/benches/engine.rs

crates/bench/benches/engine.rs:
