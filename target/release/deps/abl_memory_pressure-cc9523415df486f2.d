/root/repo/target/release/deps/abl_memory_pressure-cc9523415df486f2.d: crates/bench/src/bin/abl_memory_pressure.rs

/root/repo/target/release/deps/abl_memory_pressure-cc9523415df486f2: crates/bench/src/bin/abl_memory_pressure.rs

crates/bench/src/bin/abl_memory_pressure.rs:
