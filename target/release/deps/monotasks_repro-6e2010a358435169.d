/root/repo/target/release/deps/monotasks_repro-6e2010a358435169.d: src/lib.rs

/root/repo/target/release/deps/monotasks_repro-6e2010a358435169: src/lib.rs

src/lib.rs:
