/root/repo/target/release/deps/engine-e6ca0dbab8bc12bd.d: crates/bench/benches/engine.rs

/root/repo/target/release/deps/engine-e6ca0dbab8bc12bd: crates/bench/benches/engine.rs

crates/bench/benches/engine.rs:
