/root/repo/target/release/deps/cluster-8d99c54031e3882c.d: crates/cluster/src/lib.rs crates/cluster/src/cache.rs crates/cluster/src/fluid.rs crates/cluster/src/hw.rs crates/cluster/src/trace.rs

/root/repo/target/release/deps/cluster-8d99c54031e3882c: crates/cluster/src/lib.rs crates/cluster/src/cache.rs crates/cluster/src/fluid.rs crates/cluster/src/hw.rs crates/cluster/src/trace.rs

crates/cluster/src/lib.rs:
crates/cluster/src/cache.rs:
crates/cluster/src/fluid.rs:
crates/cluster/src/hw.rs:
crates/cluster/src/trace.rs:
