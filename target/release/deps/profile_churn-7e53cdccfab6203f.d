/root/repo/target/release/deps/profile_churn-7e53cdccfab6203f.d: crates/bench/src/bin/profile_churn.rs

/root/repo/target/release/deps/profile_churn-7e53cdccfab6203f: crates/bench/src/bin/profile_churn.rs

crates/bench/src/bin/profile_churn.rs:
