/root/repo/target/debug/deps/fig11_predict_2x_ssd-b86dcf418fccccc0.d: crates/bench/src/bin/fig11_predict_2x_ssd.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_predict_2x_ssd-b86dcf418fccccc0.rmeta: crates/bench/src/bin/fig11_predict_2x_ssd.rs Cargo.toml

crates/bench/src/bin/fig11_predict_2x_ssd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
