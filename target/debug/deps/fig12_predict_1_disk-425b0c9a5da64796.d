/root/repo/target/debug/deps/fig12_predict_1_disk-425b0c9a5da64796.d: crates/bench/src/bin/fig12_predict_1_disk.rs

/root/repo/target/debug/deps/fig12_predict_1_disk-425b0c9a5da64796: crates/bench/src/bin/fig12_predict_1_disk.rs

crates/bench/src/bin/fig12_predict_1_disk.rs:
