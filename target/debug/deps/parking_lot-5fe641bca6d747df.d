/root/repo/target/debug/deps/parking_lot-5fe641bca6d747df.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-5fe641bca6d747df: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
