/root/repo/target/debug/deps/fig12_predict_1_disk-ce6c66e9ff87acc2.d: crates/bench/src/bin/fig12_predict_1_disk.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_predict_1_disk-ce6c66e9ff87acc2.rmeta: crates/bench/src/bin/fig12_predict_1_disk.rs Cargo.toml

crates/bench/src/bin/fig12_predict_1_disk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
