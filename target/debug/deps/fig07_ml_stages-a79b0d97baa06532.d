/root/repo/target/debug/deps/fig07_ml_stages-a79b0d97baa06532.d: crates/bench/src/bin/fig07_ml_stages.rs

/root/repo/target/debug/deps/fig07_ml_stages-a79b0d97baa06532: crates/bench/src/bin/fig07_ml_stages.rs

crates/bench/src/bin/fig07_ml_stages.rs:
