/root/repo/target/debug/deps/abl_round_robin-5e25837b897af16d.d: crates/bench/src/bin/abl_round_robin.rs

/root/repo/target/debug/deps/abl_round_robin-5e25837b897af16d: crates/bench/src/bin/abl_round_robin.rs

crates/bench/src/bin/abl_round_robin.rs:
