/root/repo/target/debug/deps/fig16_attribution-fef060695401728e.d: crates/bench/src/bin/fig16_attribution.rs

/root/repo/target/debug/deps/fig16_attribution-fef060695401728e: crates/bench/src/bin/fig16_attribution.rs

crates/bench/src/bin/fig16_attribution.rs:
