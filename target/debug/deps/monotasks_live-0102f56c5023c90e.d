/root/repo/target/debug/deps/monotasks_live-0102f56c5023c90e.d: crates/live/src/lib.rs crates/live/src/data.rs crates/live/src/engine.rs crates/live/src/metrics.rs crates/live/src/pools.rs Cargo.toml

/root/repo/target/debug/deps/libmonotasks_live-0102f56c5023c90e.rmeta: crates/live/src/lib.rs crates/live/src/data.rs crates/live/src/engine.rs crates/live/src/metrics.rs crates/live/src/pools.rs Cargo.toml

crates/live/src/lib.rs:
crates/live/src/data.rs:
crates/live/src/engine.rs:
crates/live/src/metrics.rs:
crates/live/src/pools.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
