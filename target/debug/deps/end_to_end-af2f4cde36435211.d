/root/repo/target/debug/deps/end_to_end-af2f4cde36435211.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-af2f4cde36435211: tests/end_to_end.rs

tests/end_to_end.rs:
