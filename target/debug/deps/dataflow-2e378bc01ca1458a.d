/root/repo/target/debug/deps/dataflow-2e378bc01ca1458a.d: crates/dataflow/src/lib.rs crates/dataflow/src/blocks.rs crates/dataflow/src/cost.rs crates/dataflow/src/plan.rs crates/dataflow/src/reference.rs crates/dataflow/src/report.rs crates/dataflow/src/stage.rs crates/dataflow/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libdataflow-2e378bc01ca1458a.rmeta: crates/dataflow/src/lib.rs crates/dataflow/src/blocks.rs crates/dataflow/src/cost.rs crates/dataflow/src/plan.rs crates/dataflow/src/reference.rs crates/dataflow/src/report.rs crates/dataflow/src/stage.rs crates/dataflow/src/types.rs Cargo.toml

crates/dataflow/src/lib.rs:
crates/dataflow/src/blocks.rs:
crates/dataflow/src/cost.rs:
crates/dataflow/src/plan.rs:
crates/dataflow/src/reference.rs:
crates/dataflow/src/report.rs:
crates/dataflow/src/stage.rs:
crates/dataflow/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
