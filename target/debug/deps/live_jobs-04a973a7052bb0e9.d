/root/repo/target/debug/deps/live_jobs-04a973a7052bb0e9.d: crates/live/tests/live_jobs.rs Cargo.toml

/root/repo/target/debug/deps/liblive_jobs-04a973a7052bb0e9.rmeta: crates/live/tests/live_jobs.rs Cargo.toml

crates/live/tests/live_jobs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
