/root/repo/target/debug/deps/dataflow-f5dc3145647a71d2.d: crates/dataflow/src/lib.rs crates/dataflow/src/blocks.rs crates/dataflow/src/cost.rs crates/dataflow/src/plan.rs crates/dataflow/src/reference.rs crates/dataflow/src/report.rs crates/dataflow/src/stage.rs crates/dataflow/src/types.rs

/root/repo/target/debug/deps/libdataflow-f5dc3145647a71d2.rlib: crates/dataflow/src/lib.rs crates/dataflow/src/blocks.rs crates/dataflow/src/cost.rs crates/dataflow/src/plan.rs crates/dataflow/src/reference.rs crates/dataflow/src/report.rs crates/dataflow/src/stage.rs crates/dataflow/src/types.rs

/root/repo/target/debug/deps/libdataflow-f5dc3145647a71d2.rmeta: crates/dataflow/src/lib.rs crates/dataflow/src/blocks.rs crates/dataflow/src/cost.rs crates/dataflow/src/plan.rs crates/dataflow/src/reference.rs crates/dataflow/src/report.rs crates/dataflow/src/stage.rs crates/dataflow/src/types.rs

crates/dataflow/src/lib.rs:
crates/dataflow/src/blocks.rs:
crates/dataflow/src/cost.rs:
crates/dataflow/src/plan.rs:
crates/dataflow/src/reference.rs:
crates/dataflow/src/report.rs:
crates/dataflow/src/stage.rs:
crates/dataflow/src/types.rs:
