/root/repo/target/debug/deps/cluster-a804acc5e0c7f2e3.d: crates/cluster/src/lib.rs crates/cluster/src/cache.rs crates/cluster/src/fluid.rs crates/cluster/src/hw.rs crates/cluster/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libcluster-a804acc5e0c7f2e3.rmeta: crates/cluster/src/lib.rs crates/cluster/src/cache.rs crates/cluster/src/fluid.rs crates/cluster/src/hw.rs crates/cluster/src/trace.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/cache.rs:
crates/cluster/src/fluid.rs:
crates/cluster/src/hw.rs:
crates/cluster/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
