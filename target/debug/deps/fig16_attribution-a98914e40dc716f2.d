/root/repo/target/debug/deps/fig16_attribution-a98914e40dc716f2.d: crates/bench/src/bin/fig16_attribution.rs

/root/repo/target/debug/deps/fig16_attribution-a98914e40dc716f2: crates/bench/src/bin/fig16_attribution.rs

crates/bench/src/bin/fig16_attribution.rs:
