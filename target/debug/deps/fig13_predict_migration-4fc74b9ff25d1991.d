/root/repo/target/debug/deps/fig13_predict_migration-4fc74b9ff25d1991.d: crates/bench/src/bin/fig13_predict_migration.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_predict_migration-4fc74b9ff25d1991.rmeta: crates/bench/src/bin/fig13_predict_migration.rs Cargo.toml

crates/bench/src/bin/fig13_predict_migration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
