/root/repo/target/debug/deps/tab_deser_predict-39b4bc26889063dd.d: crates/bench/src/bin/tab_deser_predict.rs Cargo.toml

/root/repo/target/debug/deps/libtab_deser_predict-39b4bc26889063dd.rmeta: crates/bench/src/bin/tab_deser_predict.rs Cargo.toml

crates/bench/src/bin/tab_deser_predict.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
