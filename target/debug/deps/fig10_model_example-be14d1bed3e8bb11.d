/root/repo/target/debug/deps/fig10_model_example-be14d1bed3e8bb11.d: crates/bench/src/bin/fig10_model_example.rs

/root/repo/target/debug/deps/fig10_model_example-be14d1bed3e8bb11: crates/bench/src/bin/fig10_model_example.rs

crates/bench/src/bin/fig10_model_example.rs:
