/root/repo/target/debug/deps/sparklike-bd56383d04f225ef.d: crates/sparklike/src/lib.rs crates/sparklike/src/executor.rs

/root/repo/target/debug/deps/libsparklike-bd56383d04f225ef.rlib: crates/sparklike/src/lib.rs crates/sparklike/src/executor.rs

/root/repo/target/debug/deps/libsparklike-bd56383d04f225ef.rmeta: crates/sparklike/src/lib.rs crates/sparklike/src/executor.rs

crates/sparklike/src/lib.rs:
crates/sparklike/src/executor.rs:
