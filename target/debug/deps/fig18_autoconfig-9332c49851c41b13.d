/root/repo/target/debug/deps/fig18_autoconfig-9332c49851c41b13.d: crates/bench/src/bin/fig18_autoconfig.rs Cargo.toml

/root/repo/target/debug/deps/libfig18_autoconfig-9332c49851c41b13.rmeta: crates/bench/src/bin/fig18_autoconfig.rs Cargo.toml

crates/bench/src/bin/fig18_autoconfig.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
