/root/repo/target/debug/deps/cluster-4a2ad5a7211599a8.d: crates/cluster/src/lib.rs crates/cluster/src/cache.rs crates/cluster/src/fluid.rs crates/cluster/src/hw.rs crates/cluster/src/trace.rs

/root/repo/target/debug/deps/libcluster-4a2ad5a7211599a8.rlib: crates/cluster/src/lib.rs crates/cluster/src/cache.rs crates/cluster/src/fluid.rs crates/cluster/src/hw.rs crates/cluster/src/trace.rs

/root/repo/target/debug/deps/libcluster-4a2ad5a7211599a8.rmeta: crates/cluster/src/lib.rs crates/cluster/src/cache.rs crates/cluster/src/fluid.rs crates/cluster/src/hw.rs crates/cluster/src/trace.rs

crates/cluster/src/lib.rs:
crates/cluster/src/cache.rs:
crates/cluster/src/fluid.rs:
crates/cluster/src/hw.rs:
crates/cluster/src/trace.rs:
