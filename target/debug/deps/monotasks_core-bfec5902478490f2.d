/root/repo/target/debug/deps/monotasks_core-bfec5902478490f2.d: crates/core/src/lib.rs crates/core/src/decompose.rs crates/core/src/executor.rs crates/core/src/metrics.rs crates/core/src/monotask.rs crates/core/src/scheduler.rs

/root/repo/target/debug/deps/monotasks_core-bfec5902478490f2: crates/core/src/lib.rs crates/core/src/decompose.rs crates/core/src/executor.rs crates/core/src/metrics.rs crates/core/src/monotask.rs crates/core/src/scheduler.rs

crates/core/src/lib.rs:
crates/core/src/decompose.rs:
crates/core/src/executor.rs:
crates/core/src/metrics.rs:
crates/core/src/monotask.rs:
crates/core/src/scheduler.rs:
