/root/repo/target/debug/deps/fig06_util_boxes-cf0a85e5446cbb49.d: crates/bench/src/bin/fig06_util_boxes.rs

/root/repo/target/debug/deps/fig06_util_boxes-cf0a85e5446cbb49: crates/bench/src/bin/fig06_util_boxes.rs

crates/bench/src/bin/fig06_util_boxes.rs:
