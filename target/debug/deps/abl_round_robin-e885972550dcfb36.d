/root/repo/target/debug/deps/abl_round_robin-e885972550dcfb36.d: crates/bench/src/bin/abl_round_robin.rs Cargo.toml

/root/repo/target/debug/deps/libabl_round_robin-e885972550dcfb36.rmeta: crates/bench/src/bin/abl_round_robin.rs Cargo.toml

crates/bench/src/bin/abl_round_robin.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
