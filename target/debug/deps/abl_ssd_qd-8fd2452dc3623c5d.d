/root/repo/target/debug/deps/abl_ssd_qd-8fd2452dc3623c5d.d: crates/bench/src/bin/abl_ssd_qd.rs Cargo.toml

/root/repo/target/debug/deps/libabl_ssd_qd-8fd2452dc3623c5d.rmeta: crates/bench/src/bin/abl_ssd_qd.rs Cargo.toml

crates/bench/src/bin/abl_ssd_qd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
