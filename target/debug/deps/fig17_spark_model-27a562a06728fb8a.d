/root/repo/target/debug/deps/fig17_spark_model-27a562a06728fb8a.d: crates/bench/src/bin/fig17_spark_model.rs Cargo.toml

/root/repo/target/debug/deps/libfig17_spark_model-27a562a06728fb8a.rmeta: crates/bench/src/bin/fig17_spark_model.rs Cargo.toml

crates/bench/src/bin/fig17_spark_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
