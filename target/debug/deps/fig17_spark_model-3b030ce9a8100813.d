/root/repo/target/debug/deps/fig17_spark_model-3b030ce9a8100813.d: crates/bench/src/bin/fig17_spark_model.rs Cargo.toml

/root/repo/target/debug/deps/libfig17_spark_model-3b030ce9a8100813.rmeta: crates/bench/src/bin/fig17_spark_model.rs Cargo.toml

crates/bench/src/bin/fig17_spark_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
