/root/repo/target/debug/deps/end_to_end-216e179e29fd2fd6.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-216e179e29fd2fd6: tests/end_to_end.rs

tests/end_to_end.rs:
