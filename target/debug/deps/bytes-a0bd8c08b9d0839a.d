/root/repo/target/debug/deps/bytes-a0bd8c08b9d0839a.d: vendor/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-a0bd8c08b9d0839a.rmeta: vendor/bytes/src/lib.rs Cargo.toml

vendor/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
