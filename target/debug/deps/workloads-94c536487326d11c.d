/root/repo/target/debug/deps/workloads-94c536487326d11c.d: crates/workloads/src/lib.rs crates/workloads/src/bdb.rs crates/workloads/src/ml.rs crates/workloads/src/skew.rs crates/workloads/src/sort.rs crates/workloads/src/wordcount.rs

/root/repo/target/debug/deps/libworkloads-94c536487326d11c.rlib: crates/workloads/src/lib.rs crates/workloads/src/bdb.rs crates/workloads/src/ml.rs crates/workloads/src/skew.rs crates/workloads/src/sort.rs crates/workloads/src/wordcount.rs

/root/repo/target/debug/deps/libworkloads-94c536487326d11c.rmeta: crates/workloads/src/lib.rs crates/workloads/src/bdb.rs crates/workloads/src/ml.rs crates/workloads/src/skew.rs crates/workloads/src/sort.rs crates/workloads/src/wordcount.rs

crates/workloads/src/lib.rs:
crates/workloads/src/bdb.rs:
crates/workloads/src/ml.rs:
crates/workloads/src/skew.rs:
crates/workloads/src/sort.rs:
crates/workloads/src/wordcount.rs:
