/root/repo/target/debug/deps/tab_tungsten_whatif-1d49a8b4dea4033d.d: crates/bench/src/bin/tab_tungsten_whatif.rs

/root/repo/target/debug/deps/tab_tungsten_whatif-1d49a8b4dea4033d: crates/bench/src/bin/tab_tungsten_whatif.rs

crates/bench/src/bin/tab_tungsten_whatif.rs:
