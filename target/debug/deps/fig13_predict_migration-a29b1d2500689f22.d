/root/repo/target/debug/deps/fig13_predict_migration-a29b1d2500689f22.d: crates/bench/src/bin/fig13_predict_migration.rs

/root/repo/target/debug/deps/fig13_predict_migration-a29b1d2500689f22: crates/bench/src/bin/fig13_predict_migration.rs

crates/bench/src/bin/fig13_predict_migration.rs:
