/root/repo/target/debug/deps/abl_head_of_line-e8f6f08a4afab612.d: crates/bench/src/bin/abl_head_of_line.rs Cargo.toml

/root/repo/target/debug/deps/libabl_head_of_line-e8f6f08a4afab612.rmeta: crates/bench/src/bin/abl_head_of_line.rs Cargo.toml

crates/bench/src/bin/abl_head_of_line.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
