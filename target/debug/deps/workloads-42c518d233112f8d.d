/root/repo/target/debug/deps/workloads-42c518d233112f8d.d: crates/workloads/src/lib.rs crates/workloads/src/bdb.rs crates/workloads/src/ml.rs crates/workloads/src/skew.rs crates/workloads/src/sort.rs crates/workloads/src/wordcount.rs

/root/repo/target/debug/deps/workloads-42c518d233112f8d: crates/workloads/src/lib.rs crates/workloads/src/bdb.rs crates/workloads/src/ml.rs crates/workloads/src/skew.rs crates/workloads/src/sort.rs crates/workloads/src/wordcount.rs

crates/workloads/src/lib.rs:
crates/workloads/src/bdb.rs:
crates/workloads/src/ml.rs:
crates/workloads/src/skew.rs:
crates/workloads/src/sort.rs:
crates/workloads/src/wordcount.rs:
