/root/repo/target/debug/deps/cluster-ae5c10a874fe5e45.d: crates/cluster/src/lib.rs crates/cluster/src/cache.rs crates/cluster/src/fluid.rs crates/cluster/src/hw.rs crates/cluster/src/trace.rs

/root/repo/target/debug/deps/cluster-ae5c10a874fe5e45: crates/cluster/src/lib.rs crates/cluster/src/cache.rs crates/cluster/src/fluid.rs crates/cluster/src/hw.rs crates/cluster/src/trace.rs

crates/cluster/src/lib.rs:
crates/cluster/src/cache.rs:
crates/cluster/src/fluid.rs:
crates/cluster/src/hw.rs:
crates/cluster/src/trace.rs:
