/root/repo/target/debug/deps/fig18_autoconfig-695d63f7645973d1.d: crates/bench/src/bin/fig18_autoconfig.rs

/root/repo/target/debug/deps/fig18_autoconfig-695d63f7645973d1: crates/bench/src/bin/fig18_autoconfig.rs

crates/bench/src/bin/fig18_autoconfig.rs:
