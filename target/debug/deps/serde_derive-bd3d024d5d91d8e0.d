/root/repo/target/debug/deps/serde_derive-bd3d024d5d91d8e0.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/serde_derive-bd3d024d5d91d8e0: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
