/root/repo/target/debug/deps/scale_sweep-e25f123cacb21d81.d: crates/bench/src/bin/scale_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libscale_sweep-e25f123cacb21d81.rmeta: crates/bench/src/bin/scale_sweep.rs Cargo.toml

crates/bench/src/bin/scale_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
