/root/repo/target/debug/deps/mt_bench-53e33ce7285ae13d.d: crates/bench/src/lib.rs crates/bench/src/ascii.rs

/root/repo/target/debug/deps/mt_bench-53e33ce7285ae13d: crates/bench/src/lib.rs crates/bench/src/ascii.rs

crates/bench/src/lib.rs:
crates/bench/src/ascii.rs:
