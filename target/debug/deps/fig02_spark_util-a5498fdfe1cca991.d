/root/repo/target/debug/deps/fig02_spark_util-a5498fdfe1cca991.d: crates/bench/src/bin/fig02_spark_util.rs

/root/repo/target/debug/deps/fig02_spark_util-a5498fdfe1cca991: crates/bench/src/bin/fig02_spark_util.rs

crates/bench/src/bin/fig02_spark_util.rs:
