/root/repo/target/debug/deps/abl_concurrency_plus_one-6394b58f3e1b071e.d: crates/bench/src/bin/abl_concurrency_plus_one.rs

/root/repo/target/debug/deps/abl_concurrency_plus_one-6394b58f3e1b071e: crates/bench/src/bin/abl_concurrency_plus_one.rs

crates/bench/src/bin/abl_concurrency_plus_one.rs:
