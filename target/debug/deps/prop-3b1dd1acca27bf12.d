/root/repo/target/debug/deps/prop-3b1dd1acca27bf12.d: crates/cluster/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-3b1dd1acca27bf12.rmeta: crates/cluster/tests/prop.rs Cargo.toml

crates/cluster/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
