/root/repo/target/debug/deps/abl_disk_choice-4a9359c1021c872c.d: crates/bench/src/bin/abl_disk_choice.rs Cargo.toml

/root/repo/target/debug/deps/libabl_disk_choice-4a9359c1021c872c.rmeta: crates/bench/src/bin/abl_disk_choice.rs Cargo.toml

crates/bench/src/bin/abl_disk_choice.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
