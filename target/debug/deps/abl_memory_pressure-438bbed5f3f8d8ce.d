/root/repo/target/debug/deps/abl_memory_pressure-438bbed5f3f8d8ce.d: crates/bench/src/bin/abl_memory_pressure.rs Cargo.toml

/root/repo/target/debug/deps/libabl_memory_pressure-438bbed5f3f8d8ce.rmeta: crates/bench/src/bin/abl_memory_pressure.rs Cargo.toml

crates/bench/src/bin/abl_memory_pressure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
