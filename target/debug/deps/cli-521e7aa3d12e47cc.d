/root/repo/target/debug/deps/cli-521e7aa3d12e47cc.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-521e7aa3d12e47cc.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_monotasks-sim=placeholder:monotasks-sim
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
