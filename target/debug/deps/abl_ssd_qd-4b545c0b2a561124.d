/root/repo/target/debug/deps/abl_ssd_qd-4b545c0b2a561124.d: crates/bench/src/bin/abl_ssd_qd.rs

/root/repo/target/debug/deps/abl_ssd_qd-4b545c0b2a561124: crates/bench/src/bin/abl_ssd_qd.rs

crates/bench/src/bin/abl_ssd_qd.rs:
