/root/repo/target/debug/deps/mt_bench-17febb29121719a9.d: crates/bench/src/lib.rs crates/bench/src/ascii.rs

/root/repo/target/debug/deps/libmt_bench-17febb29121719a9.rlib: crates/bench/src/lib.rs crates/bench/src/ascii.rs

/root/repo/target/debug/deps/libmt_bench-17febb29121719a9.rmeta: crates/bench/src/lib.rs crates/bench/src/ascii.rs

crates/bench/src/lib.rs:
crates/bench/src/ascii.rs:
