/root/repo/target/debug/deps/monotasks_repro-9f7015eda0fa82d7.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmonotasks_repro-9f7015eda0fa82d7.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
