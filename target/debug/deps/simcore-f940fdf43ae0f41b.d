/root/repo/target/debug/deps/simcore-f940fdf43ae0f41b.d: crates/simcore/src/lib.rs crates/simcore/src/events.rs crates/simcore/src/maxmin.rs crates/simcore/src/recorder.rs crates/simcore/src/resource.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/debug/deps/libsimcore-f940fdf43ae0f41b.rlib: crates/simcore/src/lib.rs crates/simcore/src/events.rs crates/simcore/src/maxmin.rs crates/simcore/src/recorder.rs crates/simcore/src/resource.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/debug/deps/libsimcore-f940fdf43ae0f41b.rmeta: crates/simcore/src/lib.rs crates/simcore/src/events.rs crates/simcore/src/maxmin.rs crates/simcore/src/recorder.rs crates/simcore/src/resource.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/events.rs:
crates/simcore/src/maxmin.rs:
crates/simcore/src/recorder.rs:
crates/simcore/src/resource.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
