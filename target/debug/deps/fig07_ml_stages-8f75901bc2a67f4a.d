/root/repo/target/debug/deps/fig07_ml_stages-8f75901bc2a67f4a.d: crates/bench/src/bin/fig07_ml_stages.rs

/root/repo/target/debug/deps/fig07_ml_stages-8f75901bc2a67f4a: crates/bench/src/bin/fig07_ml_stages.rs

crates/bench/src/bin/fig07_ml_stages.rs:
