/root/repo/target/debug/deps/cli-dc1ce96ec77f147a.d: tests/cli.rs

/root/repo/target/debug/deps/cli-dc1ce96ec77f147a: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_monotasks-sim=/root/repo/target/debug/monotasks-sim
