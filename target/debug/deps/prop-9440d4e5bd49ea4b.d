/root/repo/target/debug/deps/prop-9440d4e5bd49ea4b.d: crates/cluster/tests/prop.rs

/root/repo/target/debug/deps/prop-9440d4e5bd49ea4b: crates/cluster/tests/prop.rs

crates/cluster/tests/prop.rs:
