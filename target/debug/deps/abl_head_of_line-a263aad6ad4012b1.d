/root/repo/target/debug/deps/abl_head_of_line-a263aad6ad4012b1.d: crates/bench/src/bin/abl_head_of_line.rs

/root/repo/target/debug/deps/abl_head_of_line-a263aad6ad4012b1: crates/bench/src/bin/abl_head_of_line.rs

crates/bench/src/bin/abl_head_of_line.rs:
