/root/repo/target/debug/deps/abl_round_robin-17576a7a5efc7dcc.d: crates/bench/src/bin/abl_round_robin.rs

/root/repo/target/debug/deps/abl_round_robin-17576a7a5efc7dcc: crates/bench/src/bin/abl_round_robin.rs

crates/bench/src/bin/abl_round_robin.rs:
