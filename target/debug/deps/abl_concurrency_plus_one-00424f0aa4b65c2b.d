/root/repo/target/debug/deps/abl_concurrency_plus_one-00424f0aa4b65c2b.d: crates/bench/src/bin/abl_concurrency_plus_one.rs Cargo.toml

/root/repo/target/debug/deps/libabl_concurrency_plus_one-00424f0aa4b65c2b.rmeta: crates/bench/src/bin/abl_concurrency_plus_one.rs Cargo.toml

crates/bench/src/bin/abl_concurrency_plus_one.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
