/root/repo/target/debug/deps/monotasks_sim-3cd06357a8ee4b88.d: src/bin/monotasks-sim.rs

/root/repo/target/debug/deps/monotasks_sim-3cd06357a8ee4b88: src/bin/monotasks-sim.rs

src/bin/monotasks-sim.rs:
