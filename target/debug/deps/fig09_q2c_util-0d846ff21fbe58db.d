/root/repo/target/debug/deps/fig09_q2c_util-0d846ff21fbe58db.d: crates/bench/src/bin/fig09_q2c_util.rs

/root/repo/target/debug/deps/fig09_q2c_util-0d846ff21fbe58db: crates/bench/src/bin/fig09_q2c_util.rs

crates/bench/src/bin/fig09_q2c_util.rs:
