/root/repo/target/debug/deps/dataflow-0c588e78c582941c.d: crates/dataflow/src/lib.rs crates/dataflow/src/blocks.rs crates/dataflow/src/cost.rs crates/dataflow/src/plan.rs crates/dataflow/src/reference.rs crates/dataflow/src/report.rs crates/dataflow/src/stage.rs crates/dataflow/src/types.rs

/root/repo/target/debug/deps/dataflow-0c588e78c582941c: crates/dataflow/src/lib.rs crates/dataflow/src/blocks.rs crates/dataflow/src/cost.rs crates/dataflow/src/plan.rs crates/dataflow/src/reference.rs crates/dataflow/src/report.rs crates/dataflow/src/stage.rs crates/dataflow/src/types.rs

crates/dataflow/src/lib.rs:
crates/dataflow/src/blocks.rs:
crates/dataflow/src/cost.rs:
crates/dataflow/src/plan.rs:
crates/dataflow/src/reference.rs:
crates/dataflow/src/report.rs:
crates/dataflow/src/stage.rs:
crates/dataflow/src/types.rs:
