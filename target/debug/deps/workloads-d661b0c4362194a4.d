/root/repo/target/debug/deps/workloads-d661b0c4362194a4.d: crates/workloads/src/lib.rs crates/workloads/src/bdb.rs crates/workloads/src/ml.rs crates/workloads/src/skew.rs crates/workloads/src/sort.rs crates/workloads/src/wordcount.rs Cargo.toml

/root/repo/target/debug/deps/libworkloads-d661b0c4362194a4.rmeta: crates/workloads/src/lib.rs crates/workloads/src/bdb.rs crates/workloads/src/ml.rs crates/workloads/src/skew.rs crates/workloads/src/sort.rs crates/workloads/src/wordcount.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/bdb.rs:
crates/workloads/src/ml.rs:
crates/workloads/src/skew.rs:
crates/workloads/src/sort.rs:
crates/workloads/src/wordcount.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
