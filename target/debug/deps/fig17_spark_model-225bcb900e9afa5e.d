/root/repo/target/debug/deps/fig17_spark_model-225bcb900e9afa5e.d: crates/bench/src/bin/fig17_spark_model.rs

/root/repo/target/debug/deps/fig17_spark_model-225bcb900e9afa5e: crates/bench/src/bin/fig17_spark_model.rs

crates/bench/src/bin/fig17_spark_model.rs:
