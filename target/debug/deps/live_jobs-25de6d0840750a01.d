/root/repo/target/debug/deps/live_jobs-25de6d0840750a01.d: crates/live/tests/live_jobs.rs

/root/repo/target/debug/deps/live_jobs-25de6d0840750a01: crates/live/tests/live_jobs.rs

crates/live/tests/live_jobs.rs:
