/root/repo/target/debug/deps/cli-c56a0e6aff82227b.d: tests/cli.rs

/root/repo/target/debug/deps/cli-c56a0e6aff82227b: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_monotasks-sim=/root/repo/target/debug/monotasks-sim
