/root/repo/target/debug/deps/fig11_predict_2x_ssd-4c5ae69f35f278fd.d: crates/bench/src/bin/fig11_predict_2x_ssd.rs

/root/repo/target/debug/deps/fig11_predict_2x_ssd-4c5ae69f35f278fd: crates/bench/src/bin/fig11_predict_2x_ssd.rs

crates/bench/src/bin/fig11_predict_2x_ssd.rs:
