/root/repo/target/debug/deps/fig15_slot_model-5509f59550ff6bb9.d: crates/bench/src/bin/fig15_slot_model.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_slot_model-5509f59550ff6bb9.rmeta: crates/bench/src/bin/fig15_slot_model.rs Cargo.toml

crates/bench/src/bin/fig15_slot_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
