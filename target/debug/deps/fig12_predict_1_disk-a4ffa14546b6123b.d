/root/repo/target/debug/deps/fig12_predict_1_disk-a4ffa14546b6123b.d: crates/bench/src/bin/fig12_predict_1_disk.rs

/root/repo/target/debug/deps/fig12_predict_1_disk-a4ffa14546b6123b: crates/bench/src/bin/fig12_predict_1_disk.rs

crates/bench/src/bin/fig12_predict_1_disk.rs:
