/root/repo/target/debug/deps/monotasks_core-2346160b9cdc214e.d: crates/core/src/lib.rs crates/core/src/decompose.rs crates/core/src/executor.rs crates/core/src/metrics.rs crates/core/src/monotask.rs crates/core/src/scheduler.rs

/root/repo/target/debug/deps/monotasks_core-2346160b9cdc214e: crates/core/src/lib.rs crates/core/src/decompose.rs crates/core/src/executor.rs crates/core/src/metrics.rs crates/core/src/monotask.rs crates/core/src/scheduler.rs

crates/core/src/lib.rs:
crates/core/src/decompose.rs:
crates/core/src/executor.rs:
crates/core/src/metrics.rs:
crates/core/src/monotask.rs:
crates/core/src/scheduler.rs:
