/root/repo/target/debug/deps/dataflow-1ba8a4f18457e5e0.d: crates/dataflow/src/lib.rs crates/dataflow/src/blocks.rs crates/dataflow/src/cost.rs crates/dataflow/src/plan.rs crates/dataflow/src/reference.rs crates/dataflow/src/report.rs crates/dataflow/src/stage.rs crates/dataflow/src/types.rs

/root/repo/target/debug/deps/dataflow-1ba8a4f18457e5e0: crates/dataflow/src/lib.rs crates/dataflow/src/blocks.rs crates/dataflow/src/cost.rs crates/dataflow/src/plan.rs crates/dataflow/src/reference.rs crates/dataflow/src/report.rs crates/dataflow/src/stage.rs crates/dataflow/src/types.rs

crates/dataflow/src/lib.rs:
crates/dataflow/src/blocks.rs:
crates/dataflow/src/cost.rs:
crates/dataflow/src/plan.rs:
crates/dataflow/src/reference.rs:
crates/dataflow/src/report.rs:
crates/dataflow/src/stage.rs:
crates/dataflow/src/types.rs:
