/root/repo/target/debug/deps/fig11_predict_2x_ssd-c559270147d592cd.d: crates/bench/src/bin/fig11_predict_2x_ssd.rs

/root/repo/target/debug/deps/fig11_predict_2x_ssd-c559270147d592cd: crates/bench/src/bin/fig11_predict_2x_ssd.rs

crates/bench/src/bin/fig11_predict_2x_ssd.rs:
