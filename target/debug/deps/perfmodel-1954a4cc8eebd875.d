/root/repo/target/debug/deps/perfmodel-1954a4cc8eebd875.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/bottleneck.rs crates/perfmodel/src/imbalance.rs crates/perfmodel/src/model.rs crates/perfmodel/src/profile.rs crates/perfmodel/src/strawman.rs

/root/repo/target/debug/deps/libperfmodel-1954a4cc8eebd875.rlib: crates/perfmodel/src/lib.rs crates/perfmodel/src/bottleneck.rs crates/perfmodel/src/imbalance.rs crates/perfmodel/src/model.rs crates/perfmodel/src/profile.rs crates/perfmodel/src/strawman.rs

/root/repo/target/debug/deps/libperfmodel-1954a4cc8eebd875.rmeta: crates/perfmodel/src/lib.rs crates/perfmodel/src/bottleneck.rs crates/perfmodel/src/imbalance.rs crates/perfmodel/src/model.rs crates/perfmodel/src/profile.rs crates/perfmodel/src/strawman.rs

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/bottleneck.rs:
crates/perfmodel/src/imbalance.rs:
crates/perfmodel/src/model.rs:
crates/perfmodel/src/profile.rs:
crates/perfmodel/src/strawman.rs:
