/root/repo/target/debug/deps/abl_memory_pressure-83a172ebc0ea040b.d: crates/bench/src/bin/abl_memory_pressure.rs

/root/repo/target/debug/deps/abl_memory_pressure-83a172ebc0ea040b: crates/bench/src/bin/abl_memory_pressure.rs

crates/bench/src/bin/abl_memory_pressure.rs:
