/root/repo/target/debug/deps/bytes-b6c32ee36516bd6f.d: vendor/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-b6c32ee36516bd6f.rmeta: vendor/bytes/src/lib.rs Cargo.toml

vendor/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
