/root/repo/target/debug/deps/fig14_bottlenecks-e30537d24b8f9871.d: crates/bench/src/bin/fig14_bottlenecks.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_bottlenecks-e30537d24b8f9871.rmeta: crates/bench/src/bin/fig14_bottlenecks.rs Cargo.toml

crates/bench/src/bin/fig14_bottlenecks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
