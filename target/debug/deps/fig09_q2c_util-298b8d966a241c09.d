/root/repo/target/debug/deps/fig09_q2c_util-298b8d966a241c09.d: crates/bench/src/bin/fig09_q2c_util.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_q2c_util-298b8d966a241c09.rmeta: crates/bench/src/bin/fig09_q2c_util.rs Cargo.toml

crates/bench/src/bin/fig09_q2c_util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
