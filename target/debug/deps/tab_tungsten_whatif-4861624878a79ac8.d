/root/repo/target/debug/deps/tab_tungsten_whatif-4861624878a79ac8.d: crates/bench/src/bin/tab_tungsten_whatif.rs Cargo.toml

/root/repo/target/debug/deps/libtab_tungsten_whatif-4861624878a79ac8.rmeta: crates/bench/src/bin/tab_tungsten_whatif.rs Cargo.toml

crates/bench/src/bin/tab_tungsten_whatif.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
