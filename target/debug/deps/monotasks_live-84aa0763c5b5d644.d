/root/repo/target/debug/deps/monotasks_live-84aa0763c5b5d644.d: crates/live/src/lib.rs crates/live/src/data.rs crates/live/src/engine.rs crates/live/src/metrics.rs crates/live/src/pools.rs

/root/repo/target/debug/deps/monotasks_live-84aa0763c5b5d644: crates/live/src/lib.rs crates/live/src/data.rs crates/live/src/engine.rs crates/live/src/metrics.rs crates/live/src/pools.rs

crates/live/src/lib.rs:
crates/live/src/data.rs:
crates/live/src/engine.rs:
crates/live/src/metrics.rs:
crates/live/src/pools.rs:
