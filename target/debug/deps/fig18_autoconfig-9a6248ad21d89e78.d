/root/repo/target/debug/deps/fig18_autoconfig-9a6248ad21d89e78.d: crates/bench/src/bin/fig18_autoconfig.rs

/root/repo/target/debug/deps/fig18_autoconfig-9a6248ad21d89e78: crates/bench/src/bin/fig18_autoconfig.rs

crates/bench/src/bin/fig18_autoconfig.rs:
