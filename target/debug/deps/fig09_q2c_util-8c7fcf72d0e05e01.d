/root/repo/target/debug/deps/fig09_q2c_util-8c7fcf72d0e05e01.d: crates/bench/src/bin/fig09_q2c_util.rs

/root/repo/target/debug/deps/fig09_q2c_util-8c7fcf72d0e05e01: crates/bench/src/bin/fig09_q2c_util.rs

crates/bench/src/bin/fig09_q2c_util.rs:
