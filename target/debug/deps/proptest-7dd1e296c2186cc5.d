/root/repo/target/debug/deps/proptest-7dd1e296c2186cc5.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-7dd1e296c2186cc5: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
