/root/repo/target/debug/deps/proptest-20dbc188638bb773.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-20dbc188638bb773.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-20dbc188638bb773.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
