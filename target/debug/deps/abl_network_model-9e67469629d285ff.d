/root/repo/target/debug/deps/abl_network_model-9e67469629d285ff.d: crates/bench/src/bin/abl_network_model.rs Cargo.toml

/root/repo/target/debug/deps/libabl_network_model-9e67469629d285ff.rmeta: crates/bench/src/bin/abl_network_model.rs Cargo.toml

crates/bench/src/bin/abl_network_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
