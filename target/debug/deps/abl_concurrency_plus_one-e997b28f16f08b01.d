/root/repo/target/debug/deps/abl_concurrency_plus_one-e997b28f16f08b01.d: crates/bench/src/bin/abl_concurrency_plus_one.rs

/root/repo/target/debug/deps/abl_concurrency_plus_one-e997b28f16f08b01: crates/bench/src/bin/abl_concurrency_plus_one.rs

crates/bench/src/bin/abl_concurrency_plus_one.rs:
