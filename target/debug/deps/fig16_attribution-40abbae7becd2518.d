/root/repo/target/debug/deps/fig16_attribution-40abbae7becd2518.d: crates/bench/src/bin/fig16_attribution.rs Cargo.toml

/root/repo/target/debug/deps/libfig16_attribution-40abbae7becd2518.rmeta: crates/bench/src/bin/fig16_attribution.rs Cargo.toml

crates/bench/src/bin/fig16_attribution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
