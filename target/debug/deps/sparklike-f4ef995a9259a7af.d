/root/repo/target/debug/deps/sparklike-f4ef995a9259a7af.d: crates/sparklike/src/lib.rs crates/sparklike/src/executor.rs

/root/repo/target/debug/deps/libsparklike-f4ef995a9259a7af.rlib: crates/sparklike/src/lib.rs crates/sparklike/src/executor.rs

/root/repo/target/debug/deps/libsparklike-f4ef995a9259a7af.rmeta: crates/sparklike/src/lib.rs crates/sparklike/src/executor.rs

crates/sparklike/src/lib.rs:
crates/sparklike/src/executor.rs:
