/root/repo/target/debug/deps/cluster-014ce7388879e1a3.d: crates/cluster/src/lib.rs crates/cluster/src/cache.rs crates/cluster/src/fluid.rs crates/cluster/src/hw.rs crates/cluster/src/trace.rs

/root/repo/target/debug/deps/cluster-014ce7388879e1a3: crates/cluster/src/lib.rs crates/cluster/src/cache.rs crates/cluster/src/fluid.rs crates/cluster/src/hw.rs crates/cluster/src/trace.rs

crates/cluster/src/lib.rs:
crates/cluster/src/cache.rs:
crates/cluster/src/fluid.rs:
crates/cluster/src/hw.rs:
crates/cluster/src/trace.rs:
