/root/repo/target/debug/deps/abl_net_outstanding-b7178a2caf082bf3.d: crates/bench/src/bin/abl_net_outstanding.rs

/root/repo/target/debug/deps/abl_net_outstanding-b7178a2caf082bf3: crates/bench/src/bin/abl_net_outstanding.rs

crates/bench/src/bin/abl_net_outstanding.rs:
