/root/repo/target/debug/deps/tab_tungsten_whatif-160424f0ca15b22d.d: crates/bench/src/bin/tab_tungsten_whatif.rs

/root/repo/target/debug/deps/tab_tungsten_whatif-160424f0ca15b22d: crates/bench/src/bin/tab_tungsten_whatif.rs

crates/bench/src/bin/tab_tungsten_whatif.rs:
