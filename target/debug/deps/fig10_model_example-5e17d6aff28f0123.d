/root/repo/target/debug/deps/fig10_model_example-5e17d6aff28f0123.d: crates/bench/src/bin/fig10_model_example.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_model_example-5e17d6aff28f0123.rmeta: crates/bench/src/bin/fig10_model_example.rs Cargo.toml

crates/bench/src/bin/fig10_model_example.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
