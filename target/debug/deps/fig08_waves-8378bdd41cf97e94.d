/root/repo/target/debug/deps/fig08_waves-8378bdd41cf97e94.d: crates/bench/src/bin/fig08_waves.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_waves-8378bdd41cf97e94.rmeta: crates/bench/src/bin/fig08_waves.rs Cargo.toml

crates/bench/src/bin/fig08_waves.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
