/root/repo/target/debug/deps/fig14_bottlenecks-e3a4dbb5f5e8f727.d: crates/bench/src/bin/fig14_bottlenecks.rs

/root/repo/target/debug/deps/fig14_bottlenecks-e3a4dbb5f5e8f727: crates/bench/src/bin/fig14_bottlenecks.rs

crates/bench/src/bin/fig14_bottlenecks.rs:
