/root/repo/target/debug/deps/monotasks_live-feca5027f29847a9.d: crates/live/src/lib.rs crates/live/src/data.rs crates/live/src/engine.rs crates/live/src/metrics.rs crates/live/src/pools.rs

/root/repo/target/debug/deps/libmonotasks_live-feca5027f29847a9.rlib: crates/live/src/lib.rs crates/live/src/data.rs crates/live/src/engine.rs crates/live/src/metrics.rs crates/live/src/pools.rs

/root/repo/target/debug/deps/libmonotasks_live-feca5027f29847a9.rmeta: crates/live/src/lib.rs crates/live/src/data.rs crates/live/src/engine.rs crates/live/src/metrics.rs crates/live/src/pools.rs

crates/live/src/lib.rs:
crates/live/src/data.rs:
crates/live/src/engine.rs:
crates/live/src/metrics.rs:
crates/live/src/pools.rs:
