/root/repo/target/debug/deps/perfmodel-3db3e0ec8b498b0b.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/bottleneck.rs crates/perfmodel/src/imbalance.rs crates/perfmodel/src/model.rs crates/perfmodel/src/profile.rs crates/perfmodel/src/strawman.rs Cargo.toml

/root/repo/target/debug/deps/libperfmodel-3db3e0ec8b498b0b.rmeta: crates/perfmodel/src/lib.rs crates/perfmodel/src/bottleneck.rs crates/perfmodel/src/imbalance.rs crates/perfmodel/src/model.rs crates/perfmodel/src/profile.rs crates/perfmodel/src/strawman.rs Cargo.toml

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/bottleneck.rs:
crates/perfmodel/src/imbalance.rs:
crates/perfmodel/src/model.rs:
crates/perfmodel/src/profile.rs:
crates/perfmodel/src/strawman.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
