/root/repo/target/debug/deps/bytes-514de943bc66941a.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/bytes-514de943bc66941a: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
