/root/repo/target/debug/deps/fig05_bdb_runtimes-3ceec9fa619d9440.d: crates/bench/src/bin/fig05_bdb_runtimes.rs Cargo.toml

/root/repo/target/debug/deps/libfig05_bdb_runtimes-3ceec9fa619d9440.rmeta: crates/bench/src/bin/fig05_bdb_runtimes.rs Cargo.toml

crates/bench/src/bin/fig05_bdb_runtimes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
