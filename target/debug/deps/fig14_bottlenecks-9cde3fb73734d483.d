/root/repo/target/debug/deps/fig14_bottlenecks-9cde3fb73734d483.d: crates/bench/src/bin/fig14_bottlenecks.rs

/root/repo/target/debug/deps/fig14_bottlenecks-9cde3fb73734d483: crates/bench/src/bin/fig14_bottlenecks.rs

crates/bench/src/bin/fig14_bottlenecks.rs:
