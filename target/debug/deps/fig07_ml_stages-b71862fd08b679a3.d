/root/repo/target/debug/deps/fig07_ml_stages-b71862fd08b679a3.d: crates/bench/src/bin/fig07_ml_stages.rs Cargo.toml

/root/repo/target/debug/deps/libfig07_ml_stages-b71862fd08b679a3.rmeta: crates/bench/src/bin/fig07_ml_stages.rs Cargo.toml

crates/bench/src/bin/fig07_ml_stages.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
