/root/repo/target/debug/deps/abl_disk_choice-a32d3d1e4ee06805.d: crates/bench/src/bin/abl_disk_choice.rs

/root/repo/target/debug/deps/abl_disk_choice-a32d3d1e4ee06805: crates/bench/src/bin/abl_disk_choice.rs

crates/bench/src/bin/abl_disk_choice.rs:
