/root/repo/target/debug/deps/prop-c70bd882b7d87c0c.d: crates/simcore/tests/prop.rs

/root/repo/target/debug/deps/prop-c70bd882b7d87c0c: crates/simcore/tests/prop.rs

crates/simcore/tests/prop.rs:
