/root/repo/target/debug/deps/perfmodel-6e986e11828528e0.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/bottleneck.rs crates/perfmodel/src/imbalance.rs crates/perfmodel/src/model.rs crates/perfmodel/src/profile.rs crates/perfmodel/src/strawman.rs

/root/repo/target/debug/deps/libperfmodel-6e986e11828528e0.rlib: crates/perfmodel/src/lib.rs crates/perfmodel/src/bottleneck.rs crates/perfmodel/src/imbalance.rs crates/perfmodel/src/model.rs crates/perfmodel/src/profile.rs crates/perfmodel/src/strawman.rs

/root/repo/target/debug/deps/libperfmodel-6e986e11828528e0.rmeta: crates/perfmodel/src/lib.rs crates/perfmodel/src/bottleneck.rs crates/perfmodel/src/imbalance.rs crates/perfmodel/src/model.rs crates/perfmodel/src/profile.rs crates/perfmodel/src/strawman.rs

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/bottleneck.rs:
crates/perfmodel/src/imbalance.rs:
crates/perfmodel/src/model.rs:
crates/perfmodel/src/profile.rs:
crates/perfmodel/src/strawman.rs:
