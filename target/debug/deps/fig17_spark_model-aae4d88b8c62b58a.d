/root/repo/target/debug/deps/fig17_spark_model-aae4d88b8c62b58a.d: crates/bench/src/bin/fig17_spark_model.rs

/root/repo/target/debug/deps/fig17_spark_model-aae4d88b8c62b58a: crates/bench/src/bin/fig17_spark_model.rs

crates/bench/src/bin/fig17_spark_model.rs:
