/root/repo/target/debug/deps/calibration-25c8ad1da66442e0.d: crates/bench/src/bin/calibration.rs Cargo.toml

/root/repo/target/debug/deps/libcalibration-25c8ad1da66442e0.rmeta: crates/bench/src/bin/calibration.rs Cargo.toml

crates/bench/src/bin/calibration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
