/root/repo/target/debug/deps/simcore-76d43816d9d49192.d: crates/simcore/src/lib.rs crates/simcore/src/events.rs crates/simcore/src/maxmin.rs crates/simcore/src/recorder.rs crates/simcore/src/resource.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libsimcore-76d43816d9d49192.rmeta: crates/simcore/src/lib.rs crates/simcore/src/events.rs crates/simcore/src/maxmin.rs crates/simcore/src/recorder.rs crates/simcore/src/resource.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs Cargo.toml

crates/simcore/src/lib.rs:
crates/simcore/src/events.rs:
crates/simcore/src/maxmin.rs:
crates/simcore/src/recorder.rs:
crates/simcore/src/resource.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
