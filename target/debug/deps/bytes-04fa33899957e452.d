/root/repo/target/debug/deps/bytes-04fa33899957e452.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-04fa33899957e452.rlib: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-04fa33899957e452.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
