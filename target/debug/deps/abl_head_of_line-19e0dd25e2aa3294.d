/root/repo/target/debug/deps/abl_head_of_line-19e0dd25e2aa3294.d: crates/bench/src/bin/abl_head_of_line.rs

/root/repo/target/debug/deps/abl_head_of_line-19e0dd25e2aa3294: crates/bench/src/bin/abl_head_of_line.rs

crates/bench/src/bin/abl_head_of_line.rs:
