/root/repo/target/debug/deps/monotasks_repro-ea0509e868ad98cd.d: src/lib.rs

/root/repo/target/debug/deps/libmonotasks_repro-ea0509e868ad98cd.rlib: src/lib.rs

/root/repo/target/debug/deps/libmonotasks_repro-ea0509e868ad98cd.rmeta: src/lib.rs

src/lib.rs:
