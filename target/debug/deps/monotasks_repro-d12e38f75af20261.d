/root/repo/target/debug/deps/monotasks_repro-d12e38f75af20261.d: src/lib.rs

/root/repo/target/debug/deps/monotasks_repro-d12e38f75af20261: src/lib.rs

src/lib.rs:
