/root/repo/target/debug/deps/monotasks_live-52e313875e32ec71.d: crates/live/src/lib.rs crates/live/src/data.rs crates/live/src/engine.rs crates/live/src/metrics.rs crates/live/src/pools.rs

/root/repo/target/debug/deps/monotasks_live-52e313875e32ec71: crates/live/src/lib.rs crates/live/src/data.rs crates/live/src/engine.rs crates/live/src/metrics.rs crates/live/src/pools.rs

crates/live/src/lib.rs:
crates/live/src/data.rs:
crates/live/src/engine.rs:
crates/live/src/metrics.rs:
crates/live/src/pools.rs:
