/root/repo/target/debug/deps/fig05_bdb_runtimes-b556205a7541c7a0.d: crates/bench/src/bin/fig05_bdb_runtimes.rs

/root/repo/target/debug/deps/fig05_bdb_runtimes-b556205a7541c7a0: crates/bench/src/bin/fig05_bdb_runtimes.rs

crates/bench/src/bin/fig05_bdb_runtimes.rs:
