/root/repo/target/debug/deps/fig10_model_example-69c5dfab46df7283.d: crates/bench/src/bin/fig10_model_example.rs

/root/repo/target/debug/deps/fig10_model_example-69c5dfab46df7283: crates/bench/src/bin/fig10_model_example.rs

crates/bench/src/bin/fig10_model_example.rs:
