/root/repo/target/debug/deps/abl_flush_policy-e4f5ca23fc01c6fa.d: crates/bench/src/bin/abl_flush_policy.rs

/root/repo/target/debug/deps/abl_flush_policy-e4f5ca23fc01c6fa: crates/bench/src/bin/abl_flush_policy.rs

crates/bench/src/bin/abl_flush_policy.rs:
