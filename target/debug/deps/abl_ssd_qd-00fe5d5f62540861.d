/root/repo/target/debug/deps/abl_ssd_qd-00fe5d5f62540861.d: crates/bench/src/bin/abl_ssd_qd.rs

/root/repo/target/debug/deps/abl_ssd_qd-00fe5d5f62540861: crates/bench/src/bin/abl_ssd_qd.rs

crates/bench/src/bin/abl_ssd_qd.rs:
