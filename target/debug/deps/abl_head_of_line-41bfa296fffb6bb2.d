/root/repo/target/debug/deps/abl_head_of_line-41bfa296fffb6bb2.d: crates/bench/src/bin/abl_head_of_line.rs Cargo.toml

/root/repo/target/debug/deps/libabl_head_of_line-41bfa296fffb6bb2.rmeta: crates/bench/src/bin/abl_head_of_line.rs Cargo.toml

crates/bench/src/bin/abl_head_of_line.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
