/root/repo/target/debug/deps/monotasks_core-cbf75433212d76ba.d: crates/core/src/lib.rs crates/core/src/decompose.rs crates/core/src/executor.rs crates/core/src/metrics.rs crates/core/src/monotask.rs crates/core/src/scheduler.rs

/root/repo/target/debug/deps/libmonotasks_core-cbf75433212d76ba.rlib: crates/core/src/lib.rs crates/core/src/decompose.rs crates/core/src/executor.rs crates/core/src/metrics.rs crates/core/src/monotask.rs crates/core/src/scheduler.rs

/root/repo/target/debug/deps/libmonotasks_core-cbf75433212d76ba.rmeta: crates/core/src/lib.rs crates/core/src/decompose.rs crates/core/src/executor.rs crates/core/src/metrics.rs crates/core/src/monotask.rs crates/core/src/scheduler.rs

crates/core/src/lib.rs:
crates/core/src/decompose.rs:
crates/core/src/executor.rs:
crates/core/src/metrics.rs:
crates/core/src/monotask.rs:
crates/core/src/scheduler.rs:
