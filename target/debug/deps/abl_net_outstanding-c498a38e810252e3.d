/root/repo/target/debug/deps/abl_net_outstanding-c498a38e810252e3.d: crates/bench/src/bin/abl_net_outstanding.rs Cargo.toml

/root/repo/target/debug/deps/libabl_net_outstanding-c498a38e810252e3.rmeta: crates/bench/src/bin/abl_net_outstanding.rs Cargo.toml

crates/bench/src/bin/abl_net_outstanding.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
