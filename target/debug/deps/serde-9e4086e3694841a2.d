/root/repo/target/debug/deps/serde-9e4086e3694841a2.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-9e4086e3694841a2: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
