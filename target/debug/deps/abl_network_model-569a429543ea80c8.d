/root/repo/target/debug/deps/abl_network_model-569a429543ea80c8.d: crates/bench/src/bin/abl_network_model.rs

/root/repo/target/debug/deps/abl_network_model-569a429543ea80c8: crates/bench/src/bin/abl_network_model.rs

crates/bench/src/bin/abl_network_model.rs:
