/root/repo/target/debug/deps/fig08_waves-dfee6228b6f9a4cc.d: crates/bench/src/bin/fig08_waves.rs

/root/repo/target/debug/deps/fig08_waves-dfee6228b6f9a4cc: crates/bench/src/bin/fig08_waves.rs

crates/bench/src/bin/fig08_waves.rs:
