/root/repo/target/debug/deps/calibration-68c3950283fbd29b.d: crates/bench/src/bin/calibration.rs

/root/repo/target/debug/deps/calibration-68c3950283fbd29b: crates/bench/src/bin/calibration.rs

crates/bench/src/bin/calibration.rs:
