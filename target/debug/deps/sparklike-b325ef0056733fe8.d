/root/repo/target/debug/deps/sparklike-b325ef0056733fe8.d: crates/sparklike/src/lib.rs crates/sparklike/src/executor.rs Cargo.toml

/root/repo/target/debug/deps/libsparklike-b325ef0056733fe8.rmeta: crates/sparklike/src/lib.rs crates/sparklike/src/executor.rs Cargo.toml

crates/sparklike/src/lib.rs:
crates/sparklike/src/executor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
