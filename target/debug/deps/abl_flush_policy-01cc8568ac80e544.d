/root/repo/target/debug/deps/abl_flush_policy-01cc8568ac80e544.d: crates/bench/src/bin/abl_flush_policy.rs

/root/repo/target/debug/deps/abl_flush_policy-01cc8568ac80e544: crates/bench/src/bin/abl_flush_policy.rs

crates/bench/src/bin/abl_flush_policy.rs:
