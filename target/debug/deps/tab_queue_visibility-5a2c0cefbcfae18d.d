/root/repo/target/debug/deps/tab_queue_visibility-5a2c0cefbcfae18d.d: crates/bench/src/bin/tab_queue_visibility.rs

/root/repo/target/debug/deps/tab_queue_visibility-5a2c0cefbcfae18d: crates/bench/src/bin/tab_queue_visibility.rs

crates/bench/src/bin/tab_queue_visibility.rs:
