/root/repo/target/debug/deps/tab_sort_hdd-10a0252be4acdd5a.d: crates/bench/src/bin/tab_sort_hdd.rs

/root/repo/target/debug/deps/tab_sort_hdd-10a0252be4acdd5a: crates/bench/src/bin/tab_sort_hdd.rs

crates/bench/src/bin/tab_sort_hdd.rs:
