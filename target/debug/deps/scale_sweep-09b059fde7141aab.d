/root/repo/target/debug/deps/scale_sweep-09b059fde7141aab.d: crates/bench/src/bin/scale_sweep.rs

/root/repo/target/debug/deps/scale_sweep-09b059fde7141aab: crates/bench/src/bin/scale_sweep.rs

crates/bench/src/bin/scale_sweep.rs:
