/root/repo/target/debug/deps/simcore-84363721678d6e53.d: crates/simcore/src/lib.rs crates/simcore/src/events.rs crates/simcore/src/maxmin.rs crates/simcore/src/recorder.rs crates/simcore/src/resource.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/debug/deps/simcore-84363721678d6e53: crates/simcore/src/lib.rs crates/simcore/src/events.rs crates/simcore/src/maxmin.rs crates/simcore/src/recorder.rs crates/simcore/src/resource.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/events.rs:
crates/simcore/src/maxmin.rs:
crates/simcore/src/recorder.rs:
crates/simcore/src/resource.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
