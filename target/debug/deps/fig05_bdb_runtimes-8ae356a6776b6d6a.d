/root/repo/target/debug/deps/fig05_bdb_runtimes-8ae356a6776b6d6a.d: crates/bench/src/bin/fig05_bdb_runtimes.rs

/root/repo/target/debug/deps/fig05_bdb_runtimes-8ae356a6776b6d6a: crates/bench/src/bin/fig05_bdb_runtimes.rs

crates/bench/src/bin/fig05_bdb_runtimes.rs:
