/root/repo/target/debug/deps/fig02_spark_util-f2a7a64379cea8de.d: crates/bench/src/bin/fig02_spark_util.rs Cargo.toml

/root/repo/target/debug/deps/libfig02_spark_util-f2a7a64379cea8de.rmeta: crates/bench/src/bin/fig02_spark_util.rs Cargo.toml

crates/bench/src/bin/fig02_spark_util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
