/root/repo/target/debug/deps/fig13_predict_migration-6fe55259ac689e5c.d: crates/bench/src/bin/fig13_predict_migration.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_predict_migration-6fe55259ac689e5c.rmeta: crates/bench/src/bin/fig13_predict_migration.rs Cargo.toml

crates/bench/src/bin/fig13_predict_migration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
