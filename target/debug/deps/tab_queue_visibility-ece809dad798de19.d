/root/repo/target/debug/deps/tab_queue_visibility-ece809dad798de19.d: crates/bench/src/bin/tab_queue_visibility.rs

/root/repo/target/debug/deps/tab_queue_visibility-ece809dad798de19: crates/bench/src/bin/tab_queue_visibility.rs

crates/bench/src/bin/tab_queue_visibility.rs:
