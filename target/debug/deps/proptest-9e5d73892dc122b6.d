/root/repo/target/debug/deps/proptest-9e5d73892dc122b6.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-9e5d73892dc122b6.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
