/root/repo/target/debug/deps/sparklike-3099e9a4ddb35079.d: crates/sparklike/src/lib.rs crates/sparklike/src/executor.rs Cargo.toml

/root/repo/target/debug/deps/libsparklike-3099e9a4ddb35079.rmeta: crates/sparklike/src/lib.rs crates/sparklike/src/executor.rs Cargo.toml

crates/sparklike/src/lib.rs:
crates/sparklike/src/executor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
