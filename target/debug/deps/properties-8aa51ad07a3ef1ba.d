/root/repo/target/debug/deps/properties-8aa51ad07a3ef1ba.d: tests/properties.rs

/root/repo/target/debug/deps/properties-8aa51ad07a3ef1ba: tests/properties.rs

tests/properties.rs:
