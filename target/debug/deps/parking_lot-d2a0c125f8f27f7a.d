/root/repo/target/debug/deps/parking_lot-d2a0c125f8f27f7a.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-d2a0c125f8f27f7a.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-d2a0c125f8f27f7a.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
