/root/repo/target/debug/deps/mt_bench-bcde3269f0fe756a.d: crates/bench/src/lib.rs crates/bench/src/ascii.rs

/root/repo/target/debug/deps/mt_bench-bcde3269f0fe756a: crates/bench/src/lib.rs crates/bench/src/ascii.rs

crates/bench/src/lib.rs:
crates/bench/src/ascii.rs:
