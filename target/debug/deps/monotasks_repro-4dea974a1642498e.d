/root/repo/target/debug/deps/monotasks_repro-4dea974a1642498e.d: src/lib.rs

/root/repo/target/debug/deps/libmonotasks_repro-4dea974a1642498e.rlib: src/lib.rs

/root/repo/target/debug/deps/libmonotasks_repro-4dea974a1642498e.rmeta: src/lib.rs

src/lib.rs:
