/root/repo/target/debug/deps/monotasks_sim-1836630413fa4f7b.d: src/bin/monotasks-sim.rs Cargo.toml

/root/repo/target/debug/deps/libmonotasks_sim-1836630413fa4f7b.rmeta: src/bin/monotasks-sim.rs Cargo.toml

src/bin/monotasks-sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
