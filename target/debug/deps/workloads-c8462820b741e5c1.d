/root/repo/target/debug/deps/workloads-c8462820b741e5c1.d: crates/workloads/src/lib.rs crates/workloads/src/bdb.rs crates/workloads/src/ml.rs crates/workloads/src/skew.rs crates/workloads/src/sort.rs crates/workloads/src/wordcount.rs

/root/repo/target/debug/deps/libworkloads-c8462820b741e5c1.rlib: crates/workloads/src/lib.rs crates/workloads/src/bdb.rs crates/workloads/src/ml.rs crates/workloads/src/skew.rs crates/workloads/src/sort.rs crates/workloads/src/wordcount.rs

/root/repo/target/debug/deps/libworkloads-c8462820b741e5c1.rmeta: crates/workloads/src/lib.rs crates/workloads/src/bdb.rs crates/workloads/src/ml.rs crates/workloads/src/skew.rs crates/workloads/src/sort.rs crates/workloads/src/wordcount.rs

crates/workloads/src/lib.rs:
crates/workloads/src/bdb.rs:
crates/workloads/src/ml.rs:
crates/workloads/src/skew.rs:
crates/workloads/src/sort.rs:
crates/workloads/src/wordcount.rs:
