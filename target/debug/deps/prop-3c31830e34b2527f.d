/root/repo/target/debug/deps/prop-3c31830e34b2527f.d: crates/cluster/tests/prop.rs

/root/repo/target/debug/deps/prop-3c31830e34b2527f: crates/cluster/tests/prop.rs

crates/cluster/tests/prop.rs:
