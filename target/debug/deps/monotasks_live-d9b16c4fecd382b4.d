/root/repo/target/debug/deps/monotasks_live-d9b16c4fecd382b4.d: crates/live/src/lib.rs crates/live/src/data.rs crates/live/src/engine.rs crates/live/src/metrics.rs crates/live/src/pools.rs

/root/repo/target/debug/deps/libmonotasks_live-d9b16c4fecd382b4.rlib: crates/live/src/lib.rs crates/live/src/data.rs crates/live/src/engine.rs crates/live/src/metrics.rs crates/live/src/pools.rs

/root/repo/target/debug/deps/libmonotasks_live-d9b16c4fecd382b4.rmeta: crates/live/src/lib.rs crates/live/src/data.rs crates/live/src/engine.rs crates/live/src/metrics.rs crates/live/src/pools.rs

crates/live/src/lib.rs:
crates/live/src/data.rs:
crates/live/src/engine.rs:
crates/live/src/metrics.rs:
crates/live/src/pools.rs:
