/root/repo/target/debug/deps/abl_network_model-e8a3434d1bdbd5d4.d: crates/bench/src/bin/abl_network_model.rs

/root/repo/target/debug/deps/abl_network_model-e8a3434d1bdbd5d4: crates/bench/src/bin/abl_network_model.rs

crates/bench/src/bin/abl_network_model.rs:
