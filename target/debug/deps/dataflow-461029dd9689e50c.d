/root/repo/target/debug/deps/dataflow-461029dd9689e50c.d: crates/dataflow/src/lib.rs crates/dataflow/src/blocks.rs crates/dataflow/src/cost.rs crates/dataflow/src/plan.rs crates/dataflow/src/reference.rs crates/dataflow/src/report.rs crates/dataflow/src/stage.rs crates/dataflow/src/types.rs

/root/repo/target/debug/deps/libdataflow-461029dd9689e50c.rlib: crates/dataflow/src/lib.rs crates/dataflow/src/blocks.rs crates/dataflow/src/cost.rs crates/dataflow/src/plan.rs crates/dataflow/src/reference.rs crates/dataflow/src/report.rs crates/dataflow/src/stage.rs crates/dataflow/src/types.rs

/root/repo/target/debug/deps/libdataflow-461029dd9689e50c.rmeta: crates/dataflow/src/lib.rs crates/dataflow/src/blocks.rs crates/dataflow/src/cost.rs crates/dataflow/src/plan.rs crates/dataflow/src/reference.rs crates/dataflow/src/report.rs crates/dataflow/src/stage.rs crates/dataflow/src/types.rs

crates/dataflow/src/lib.rs:
crates/dataflow/src/blocks.rs:
crates/dataflow/src/cost.rs:
crates/dataflow/src/plan.rs:
crates/dataflow/src/reference.rs:
crates/dataflow/src/report.rs:
crates/dataflow/src/stage.rs:
crates/dataflow/src/types.rs:
