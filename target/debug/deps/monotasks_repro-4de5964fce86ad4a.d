/root/repo/target/debug/deps/monotasks_repro-4de5964fce86ad4a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmonotasks_repro-4de5964fce86ad4a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
