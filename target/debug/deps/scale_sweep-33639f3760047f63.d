/root/repo/target/debug/deps/scale_sweep-33639f3760047f63.d: crates/bench/src/bin/scale_sweep.rs

/root/repo/target/debug/deps/scale_sweep-33639f3760047f63: crates/bench/src/bin/scale_sweep.rs

crates/bench/src/bin/scale_sweep.rs:
