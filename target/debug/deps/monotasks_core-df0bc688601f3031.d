/root/repo/target/debug/deps/monotasks_core-df0bc688601f3031.d: crates/core/src/lib.rs crates/core/src/decompose.rs crates/core/src/executor.rs crates/core/src/metrics.rs crates/core/src/monotask.rs crates/core/src/scheduler.rs Cargo.toml

/root/repo/target/debug/deps/libmonotasks_core-df0bc688601f3031.rmeta: crates/core/src/lib.rs crates/core/src/decompose.rs crates/core/src/executor.rs crates/core/src/metrics.rs crates/core/src/monotask.rs crates/core/src/scheduler.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/decompose.rs:
crates/core/src/executor.rs:
crates/core/src/metrics.rs:
crates/core/src/monotask.rs:
crates/core/src/scheduler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
