/root/repo/target/debug/deps/determinism-806ec911bfcd246f.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-806ec911bfcd246f: tests/determinism.rs

tests/determinism.rs:
