/root/repo/target/debug/deps/calibration-82d93cfc31c93de0.d: crates/bench/src/bin/calibration.rs

/root/repo/target/debug/deps/calibration-82d93cfc31c93de0: crates/bench/src/bin/calibration.rs

crates/bench/src/bin/calibration.rs:
