/root/repo/target/debug/deps/monotasks_core-3a2d6b8dc9efde42.d: crates/core/src/lib.rs crates/core/src/decompose.rs crates/core/src/executor.rs crates/core/src/metrics.rs crates/core/src/monotask.rs crates/core/src/scheduler.rs

/root/repo/target/debug/deps/libmonotasks_core-3a2d6b8dc9efde42.rlib: crates/core/src/lib.rs crates/core/src/decompose.rs crates/core/src/executor.rs crates/core/src/metrics.rs crates/core/src/monotask.rs crates/core/src/scheduler.rs

/root/repo/target/debug/deps/libmonotasks_core-3a2d6b8dc9efde42.rmeta: crates/core/src/lib.rs crates/core/src/decompose.rs crates/core/src/executor.rs crates/core/src/metrics.rs crates/core/src/monotask.rs crates/core/src/scheduler.rs

crates/core/src/lib.rs:
crates/core/src/decompose.rs:
crates/core/src/executor.rs:
crates/core/src/metrics.rs:
crates/core/src/monotask.rs:
crates/core/src/scheduler.rs:
