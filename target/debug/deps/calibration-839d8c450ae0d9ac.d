/root/repo/target/debug/deps/calibration-839d8c450ae0d9ac.d: crates/bench/src/bin/calibration.rs Cargo.toml

/root/repo/target/debug/deps/libcalibration-839d8c450ae0d9ac.rmeta: crates/bench/src/bin/calibration.rs Cargo.toml

crates/bench/src/bin/calibration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
