/root/repo/target/debug/deps/mt_bench-6163ba0533a9342d.d: crates/bench/src/lib.rs crates/bench/src/ascii.rs

/root/repo/target/debug/deps/libmt_bench-6163ba0533a9342d.rlib: crates/bench/src/lib.rs crates/bench/src/ascii.rs

/root/repo/target/debug/deps/libmt_bench-6163ba0533a9342d.rmeta: crates/bench/src/lib.rs crates/bench/src/ascii.rs

crates/bench/src/lib.rs:
crates/bench/src/ascii.rs:
