/root/repo/target/debug/deps/fig07_ml_stages-81c07f7287c38fac.d: crates/bench/src/bin/fig07_ml_stages.rs Cargo.toml

/root/repo/target/debug/deps/libfig07_ml_stages-81c07f7287c38fac.rmeta: crates/bench/src/bin/fig07_ml_stages.rs Cargo.toml

crates/bench/src/bin/fig07_ml_stages.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
