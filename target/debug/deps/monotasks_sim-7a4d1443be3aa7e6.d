/root/repo/target/debug/deps/monotasks_sim-7a4d1443be3aa7e6.d: src/bin/monotasks-sim.rs

/root/repo/target/debug/deps/monotasks_sim-7a4d1443be3aa7e6: src/bin/monotasks-sim.rs

src/bin/monotasks-sim.rs:
