/root/repo/target/debug/deps/prop-26ed9b94576e0bd1.d: crates/simcore/tests/prop.rs

/root/repo/target/debug/deps/prop-26ed9b94576e0bd1: crates/simcore/tests/prop.rs

crates/simcore/tests/prop.rs:
