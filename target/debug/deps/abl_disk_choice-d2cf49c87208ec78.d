/root/repo/target/debug/deps/abl_disk_choice-d2cf49c87208ec78.d: crates/bench/src/bin/abl_disk_choice.rs

/root/repo/target/debug/deps/abl_disk_choice-d2cf49c87208ec78: crates/bench/src/bin/abl_disk_choice.rs

crates/bench/src/bin/abl_disk_choice.rs:
