/root/repo/target/debug/deps/abl_net_outstanding-d38d0d03fc6103bd.d: crates/bench/src/bin/abl_net_outstanding.rs

/root/repo/target/debug/deps/abl_net_outstanding-d38d0d03fc6103bd: crates/bench/src/bin/abl_net_outstanding.rs

crates/bench/src/bin/abl_net_outstanding.rs:
