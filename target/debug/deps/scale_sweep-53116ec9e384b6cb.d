/root/repo/target/debug/deps/scale_sweep-53116ec9e384b6cb.d: crates/bench/src/bin/scale_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libscale_sweep-53116ec9e384b6cb.rmeta: crates/bench/src/bin/scale_sweep.rs Cargo.toml

crates/bench/src/bin/scale_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
