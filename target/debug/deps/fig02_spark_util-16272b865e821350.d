/root/repo/target/debug/deps/fig02_spark_util-16272b865e821350.d: crates/bench/src/bin/fig02_spark_util.rs

/root/repo/target/debug/deps/fig02_spark_util-16272b865e821350: crates/bench/src/bin/fig02_spark_util.rs

crates/bench/src/bin/fig02_spark_util.rs:
