/root/repo/target/debug/deps/perfmodel-ce626835582902de.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/bottleneck.rs crates/perfmodel/src/imbalance.rs crates/perfmodel/src/model.rs crates/perfmodel/src/profile.rs crates/perfmodel/src/strawman.rs

/root/repo/target/debug/deps/perfmodel-ce626835582902de: crates/perfmodel/src/lib.rs crates/perfmodel/src/bottleneck.rs crates/perfmodel/src/imbalance.rs crates/perfmodel/src/model.rs crates/perfmodel/src/profile.rs crates/perfmodel/src/strawman.rs

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/bottleneck.rs:
crates/perfmodel/src/imbalance.rs:
crates/perfmodel/src/model.rs:
crates/perfmodel/src/profile.rs:
crates/perfmodel/src/strawman.rs:
