/root/repo/target/debug/deps/monotasks_sim-3ab32398f2a0ad5f.d: src/bin/monotasks-sim.rs

/root/repo/target/debug/deps/monotasks_sim-3ab32398f2a0ad5f: src/bin/monotasks-sim.rs

src/bin/monotasks-sim.rs:
