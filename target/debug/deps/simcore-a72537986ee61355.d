/root/repo/target/debug/deps/simcore-a72537986ee61355.d: crates/simcore/src/lib.rs crates/simcore/src/events.rs crates/simcore/src/maxmin.rs crates/simcore/src/recorder.rs crates/simcore/src/resource.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/debug/deps/libsimcore-a72537986ee61355.rlib: crates/simcore/src/lib.rs crates/simcore/src/events.rs crates/simcore/src/maxmin.rs crates/simcore/src/recorder.rs crates/simcore/src/resource.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/debug/deps/libsimcore-a72537986ee61355.rmeta: crates/simcore/src/lib.rs crates/simcore/src/events.rs crates/simcore/src/maxmin.rs crates/simcore/src/recorder.rs crates/simcore/src/resource.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/events.rs:
crates/simcore/src/maxmin.rs:
crates/simcore/src/recorder.rs:
crates/simcore/src/resource.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
