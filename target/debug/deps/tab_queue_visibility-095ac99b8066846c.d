/root/repo/target/debug/deps/tab_queue_visibility-095ac99b8066846c.d: crates/bench/src/bin/tab_queue_visibility.rs Cargo.toml

/root/repo/target/debug/deps/libtab_queue_visibility-095ac99b8066846c.rmeta: crates/bench/src/bin/tab_queue_visibility.rs Cargo.toml

crates/bench/src/bin/tab_queue_visibility.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
