/root/repo/target/debug/deps/fig06_util_boxes-9a366c4176110ccd.d: crates/bench/src/bin/fig06_util_boxes.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_util_boxes-9a366c4176110ccd.rmeta: crates/bench/src/bin/fig06_util_boxes.rs Cargo.toml

crates/bench/src/bin/fig06_util_boxes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
