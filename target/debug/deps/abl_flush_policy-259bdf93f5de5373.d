/root/repo/target/debug/deps/abl_flush_policy-259bdf93f5de5373.d: crates/bench/src/bin/abl_flush_policy.rs Cargo.toml

/root/repo/target/debug/deps/libabl_flush_policy-259bdf93f5de5373.rmeta: crates/bench/src/bin/abl_flush_policy.rs Cargo.toml

crates/bench/src/bin/abl_flush_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
