/root/repo/target/debug/deps/monotasks_repro-987686b42b6182f4.d: src/lib.rs

/root/repo/target/debug/deps/monotasks_repro-987686b42b6182f4: src/lib.rs

src/lib.rs:
