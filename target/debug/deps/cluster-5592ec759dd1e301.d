/root/repo/target/debug/deps/cluster-5592ec759dd1e301.d: crates/cluster/src/lib.rs crates/cluster/src/cache.rs crates/cluster/src/fluid.rs crates/cluster/src/hw.rs crates/cluster/src/trace.rs

/root/repo/target/debug/deps/libcluster-5592ec759dd1e301.rlib: crates/cluster/src/lib.rs crates/cluster/src/cache.rs crates/cluster/src/fluid.rs crates/cluster/src/hw.rs crates/cluster/src/trace.rs

/root/repo/target/debug/deps/libcluster-5592ec759dd1e301.rmeta: crates/cluster/src/lib.rs crates/cluster/src/cache.rs crates/cluster/src/fluid.rs crates/cluster/src/hw.rs crates/cluster/src/trace.rs

crates/cluster/src/lib.rs:
crates/cluster/src/cache.rs:
crates/cluster/src/fluid.rs:
crates/cluster/src/hw.rs:
crates/cluster/src/trace.rs:
