/root/repo/target/debug/deps/fig15_slot_model-28e6daade6b4d2c7.d: crates/bench/src/bin/fig15_slot_model.rs

/root/repo/target/debug/deps/fig15_slot_model-28e6daade6b4d2c7: crates/bench/src/bin/fig15_slot_model.rs

crates/bench/src/bin/fig15_slot_model.rs:
