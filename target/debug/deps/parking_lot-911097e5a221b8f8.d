/root/repo/target/debug/deps/parking_lot-911097e5a221b8f8.d: vendor/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparking_lot-911097e5a221b8f8.rmeta: vendor/parking_lot/src/lib.rs Cargo.toml

vendor/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
