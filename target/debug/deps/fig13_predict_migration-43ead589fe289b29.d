/root/repo/target/debug/deps/fig13_predict_migration-43ead589fe289b29.d: crates/bench/src/bin/fig13_predict_migration.rs

/root/repo/target/debug/deps/fig13_predict_migration-43ead589fe289b29: crates/bench/src/bin/fig13_predict_migration.rs

crates/bench/src/bin/fig13_predict_migration.rs:
