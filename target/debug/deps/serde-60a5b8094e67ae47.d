/root/repo/target/debug/deps/serde-60a5b8094e67ae47.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-60a5b8094e67ae47.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-60a5b8094e67ae47.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
