/root/repo/target/debug/deps/mt_bench-c27ff4e4855e7dad.d: crates/bench/src/lib.rs crates/bench/src/ascii.rs Cargo.toml

/root/repo/target/debug/deps/libmt_bench-c27ff4e4855e7dad.rmeta: crates/bench/src/lib.rs crates/bench/src/ascii.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/ascii.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
