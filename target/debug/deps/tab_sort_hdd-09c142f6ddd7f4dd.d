/root/repo/target/debug/deps/tab_sort_hdd-09c142f6ddd7f4dd.d: crates/bench/src/bin/tab_sort_hdd.rs

/root/repo/target/debug/deps/tab_sort_hdd-09c142f6ddd7f4dd: crates/bench/src/bin/tab_sort_hdd.rs

crates/bench/src/bin/tab_sort_hdd.rs:
