/root/repo/target/debug/deps/fig06_util_boxes-1806d85642e6ae2b.d: crates/bench/src/bin/fig06_util_boxes.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_util_boxes-1806d85642e6ae2b.rmeta: crates/bench/src/bin/fig06_util_boxes.rs Cargo.toml

crates/bench/src/bin/fig06_util_boxes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
