/root/repo/target/debug/deps/dataflow-8dce9111ffb68b34.d: crates/dataflow/src/lib.rs crates/dataflow/src/blocks.rs crates/dataflow/src/cost.rs crates/dataflow/src/plan.rs crates/dataflow/src/reference.rs crates/dataflow/src/report.rs crates/dataflow/src/stage.rs crates/dataflow/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libdataflow-8dce9111ffb68b34.rmeta: crates/dataflow/src/lib.rs crates/dataflow/src/blocks.rs crates/dataflow/src/cost.rs crates/dataflow/src/plan.rs crates/dataflow/src/reference.rs crates/dataflow/src/report.rs crates/dataflow/src/stage.rs crates/dataflow/src/types.rs Cargo.toml

crates/dataflow/src/lib.rs:
crates/dataflow/src/blocks.rs:
crates/dataflow/src/cost.rs:
crates/dataflow/src/plan.rs:
crates/dataflow/src/reference.rs:
crates/dataflow/src/report.rs:
crates/dataflow/src/stage.rs:
crates/dataflow/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
