/root/repo/target/debug/deps/fig18_autoconfig-7e503eccb0782d1d.d: crates/bench/src/bin/fig18_autoconfig.rs Cargo.toml

/root/repo/target/debug/deps/libfig18_autoconfig-7e503eccb0782d1d.rmeta: crates/bench/src/bin/fig18_autoconfig.rs Cargo.toml

crates/bench/src/bin/fig18_autoconfig.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
