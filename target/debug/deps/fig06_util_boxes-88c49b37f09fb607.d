/root/repo/target/debug/deps/fig06_util_boxes-88c49b37f09fb607.d: crates/bench/src/bin/fig06_util_boxes.rs

/root/repo/target/debug/deps/fig06_util_boxes-88c49b37f09fb607: crates/bench/src/bin/fig06_util_boxes.rs

crates/bench/src/bin/fig06_util_boxes.rs:
