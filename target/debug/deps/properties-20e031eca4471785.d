/root/repo/target/debug/deps/properties-20e031eca4471785.d: tests/properties.rs

/root/repo/target/debug/deps/properties-20e031eca4471785: tests/properties.rs

tests/properties.rs:
