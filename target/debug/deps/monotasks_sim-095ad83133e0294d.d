/root/repo/target/debug/deps/monotasks_sim-095ad83133e0294d.d: src/bin/monotasks-sim.rs

/root/repo/target/debug/deps/monotasks_sim-095ad83133e0294d: src/bin/monotasks-sim.rs

src/bin/monotasks-sim.rs:
