/root/repo/target/debug/deps/abl_concurrency_plus_one-487d74d54cd3b0d0.d: crates/bench/src/bin/abl_concurrency_plus_one.rs Cargo.toml

/root/repo/target/debug/deps/libabl_concurrency_plus_one-487d74d54cd3b0d0.rmeta: crates/bench/src/bin/abl_concurrency_plus_one.rs Cargo.toml

crates/bench/src/bin/abl_concurrency_plus_one.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
