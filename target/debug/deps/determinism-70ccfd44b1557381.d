/root/repo/target/debug/deps/determinism-70ccfd44b1557381.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-70ccfd44b1557381.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
