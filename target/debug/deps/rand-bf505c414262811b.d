/root/repo/target/debug/deps/rand-bf505c414262811b.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/rand-bf505c414262811b: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
