/root/repo/target/debug/deps/fig10_model_example-1a9fdaf2f42044e3.d: crates/bench/src/bin/fig10_model_example.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_model_example-1a9fdaf2f42044e3.rmeta: crates/bench/src/bin/fig10_model_example.rs Cargo.toml

crates/bench/src/bin/fig10_model_example.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
