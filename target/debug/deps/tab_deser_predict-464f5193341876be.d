/root/repo/target/debug/deps/tab_deser_predict-464f5193341876be.d: crates/bench/src/bin/tab_deser_predict.rs

/root/repo/target/debug/deps/tab_deser_predict-464f5193341876be: crates/bench/src/bin/tab_deser_predict.rs

crates/bench/src/bin/tab_deser_predict.rs:
