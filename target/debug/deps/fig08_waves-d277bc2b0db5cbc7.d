/root/repo/target/debug/deps/fig08_waves-d277bc2b0db5cbc7.d: crates/bench/src/bin/fig08_waves.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_waves-d277bc2b0db5cbc7.rmeta: crates/bench/src/bin/fig08_waves.rs Cargo.toml

crates/bench/src/bin/fig08_waves.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
