/root/repo/target/debug/deps/determinism-a4e7712de3a36627.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-a4e7712de3a36627: tests/determinism.rs

tests/determinism.rs:
