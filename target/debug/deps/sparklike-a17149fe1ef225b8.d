/root/repo/target/debug/deps/sparklike-a17149fe1ef225b8.d: crates/sparklike/src/lib.rs crates/sparklike/src/executor.rs

/root/repo/target/debug/deps/sparklike-a17149fe1ef225b8: crates/sparklike/src/lib.rs crates/sparklike/src/executor.rs

crates/sparklike/src/lib.rs:
crates/sparklike/src/executor.rs:
