/root/repo/target/debug/deps/fig15_slot_model-017598e663533353.d: crates/bench/src/bin/fig15_slot_model.rs

/root/repo/target/debug/deps/fig15_slot_model-017598e663533353: crates/bench/src/bin/fig15_slot_model.rs

crates/bench/src/bin/fig15_slot_model.rs:
