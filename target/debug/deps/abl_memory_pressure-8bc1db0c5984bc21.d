/root/repo/target/debug/deps/abl_memory_pressure-8bc1db0c5984bc21.d: crates/bench/src/bin/abl_memory_pressure.rs

/root/repo/target/debug/deps/abl_memory_pressure-8bc1db0c5984bc21: crates/bench/src/bin/abl_memory_pressure.rs

crates/bench/src/bin/abl_memory_pressure.rs:
