/root/repo/target/debug/deps/tab_sort_hdd-223a658c348287d5.d: crates/bench/src/bin/tab_sort_hdd.rs Cargo.toml

/root/repo/target/debug/deps/libtab_sort_hdd-223a658c348287d5.rmeta: crates/bench/src/bin/tab_sort_hdd.rs Cargo.toml

crates/bench/src/bin/tab_sort_hdd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
