/root/repo/target/debug/deps/tab_deser_predict-4abec6a2330f65aa.d: crates/bench/src/bin/tab_deser_predict.rs

/root/repo/target/debug/deps/tab_deser_predict-4abec6a2330f65aa: crates/bench/src/bin/tab_deser_predict.rs

crates/bench/src/bin/tab_deser_predict.rs:
