/root/repo/target/debug/deps/fig08_waves-e9abd9a295ecdf96.d: crates/bench/src/bin/fig08_waves.rs

/root/repo/target/debug/deps/fig08_waves-e9abd9a295ecdf96: crates/bench/src/bin/fig08_waves.rs

crates/bench/src/bin/fig08_waves.rs:
