/root/repo/target/debug/deps/prop-0a15b9d5ac164900.d: crates/simcore/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-0a15b9d5ac164900.rmeta: crates/simcore/tests/prop.rs Cargo.toml

crates/simcore/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
