/root/repo/target/debug/deps/live_jobs-77a84b3b3cbf6a14.d: crates/live/tests/live_jobs.rs

/root/repo/target/debug/deps/live_jobs-77a84b3b3cbf6a14: crates/live/tests/live_jobs.rs

crates/live/tests/live_jobs.rs:
