/root/repo/target/debug/deps/fig12_predict_1_disk-8515d217b7d8a27e.d: crates/bench/src/bin/fig12_predict_1_disk.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_predict_1_disk-8515d217b7d8a27e.rmeta: crates/bench/src/bin/fig12_predict_1_disk.rs Cargo.toml

crates/bench/src/bin/fig12_predict_1_disk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
