/root/repo/target/debug/deps/sparklike-cc975c8045c2580b.d: crates/sparklike/src/lib.rs crates/sparklike/src/executor.rs

/root/repo/target/debug/deps/sparklike-cc975c8045c2580b: crates/sparklike/src/lib.rs crates/sparklike/src/executor.rs

crates/sparklike/src/lib.rs:
crates/sparklike/src/executor.rs:
