/root/repo/target/debug/deps/rand-3c9c9ab68539d937.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-3c9c9ab68539d937.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-3c9c9ab68539d937.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
