/root/repo/target/debug/examples/bottleneck_hunt-9c3a4aa5ffb2d73a.d: examples/bottleneck_hunt.rs

/root/repo/target/debug/examples/bottleneck_hunt-9c3a4aa5ffb2d73a: examples/bottleneck_hunt.rs

examples/bottleneck_hunt.rs:
