/root/repo/target/debug/examples/autoconfig-13d4ecd6af61782e.d: examples/autoconfig.rs

/root/repo/target/debug/examples/autoconfig-13d4ecd6af61782e: examples/autoconfig.rs

examples/autoconfig.rs:
