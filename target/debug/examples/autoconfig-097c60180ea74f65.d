/root/repo/target/debug/examples/autoconfig-097c60180ea74f65.d: examples/autoconfig.rs

/root/repo/target/debug/examples/autoconfig-097c60180ea74f65: examples/autoconfig.rs

examples/autoconfig.rs:
