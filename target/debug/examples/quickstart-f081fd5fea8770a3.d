/root/repo/target/debug/examples/quickstart-f081fd5fea8770a3.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f081fd5fea8770a3: examples/quickstart.rs

examples/quickstart.rs:
