/root/repo/target/debug/examples/whatif_advisor-f6942ad701c0defc.d: examples/whatif_advisor.rs

/root/repo/target/debug/examples/whatif_advisor-f6942ad701c0defc: examples/whatif_advisor.rs

examples/whatif_advisor.rs:
