/root/repo/target/debug/examples/live_wordcount-71c2fb6a7ebed2d8.d: examples/live_wordcount.rs

/root/repo/target/debug/examples/live_wordcount-71c2fb6a7ebed2d8: examples/live_wordcount.rs

examples/live_wordcount.rs:
