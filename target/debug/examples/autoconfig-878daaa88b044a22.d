/root/repo/target/debug/examples/autoconfig-878daaa88b044a22.d: examples/autoconfig.rs Cargo.toml

/root/repo/target/debug/examples/libautoconfig-878daaa88b044a22.rmeta: examples/autoconfig.rs Cargo.toml

examples/autoconfig.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
