/root/repo/target/debug/examples/quickstart-30be67fe9b1ddf60.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-30be67fe9b1ddf60: examples/quickstart.rs

examples/quickstart.rs:
