/root/repo/target/debug/examples/bottleneck_hunt-d66583b9dccd97d5.d: examples/bottleneck_hunt.rs Cargo.toml

/root/repo/target/debug/examples/libbottleneck_hunt-d66583b9dccd97d5.rmeta: examples/bottleneck_hunt.rs Cargo.toml

examples/bottleneck_hunt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
