/root/repo/target/debug/examples/live_wordcount-e8a31eceb344c618.d: examples/live_wordcount.rs

/root/repo/target/debug/examples/live_wordcount-e8a31eceb344c618: examples/live_wordcount.rs

examples/live_wordcount.rs:
