/root/repo/target/debug/examples/whatif_advisor-04b3a54303e05955.d: examples/whatif_advisor.rs Cargo.toml

/root/repo/target/debug/examples/libwhatif_advisor-04b3a54303e05955.rmeta: examples/whatif_advisor.rs Cargo.toml

examples/whatif_advisor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
