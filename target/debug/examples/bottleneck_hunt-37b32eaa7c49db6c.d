/root/repo/target/debug/examples/bottleneck_hunt-37b32eaa7c49db6c.d: examples/bottleneck_hunt.rs

/root/repo/target/debug/examples/bottleneck_hunt-37b32eaa7c49db6c: examples/bottleneck_hunt.rs

examples/bottleneck_hunt.rs:
