/root/repo/target/debug/examples/quickstart-07f9d96b75d6baba.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-07f9d96b75d6baba.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
