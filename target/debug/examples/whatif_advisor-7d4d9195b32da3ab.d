/root/repo/target/debug/examples/whatif_advisor-7d4d9195b32da3ab.d: examples/whatif_advisor.rs

/root/repo/target/debug/examples/whatif_advisor-7d4d9195b32da3ab: examples/whatif_advisor.rs

examples/whatif_advisor.rs:
