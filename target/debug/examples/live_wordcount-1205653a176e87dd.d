/root/repo/target/debug/examples/live_wordcount-1205653a176e87dd.d: examples/live_wordcount.rs Cargo.toml

/root/repo/target/debug/examples/liblive_wordcount-1205653a176e87dd.rmeta: examples/live_wordcount.rs Cargo.toml

examples/live_wordcount.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
