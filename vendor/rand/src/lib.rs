//! Offline shim of `rand` 0.8: deterministic `SmallRng` plus `gen_range`
//! over integer ranges — the only surface this workspace uses.
//!
//! The generator is xoshiro-style (splitmix64 seeding, xorshift64* core):
//! statistically fine for workload shuffling and fully deterministic for a
//! given seed, which is what the simulator's reproducibility relies on.

use std::ops::{Range, RangeInclusive};

/// A random number generator core.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, matching `rand::SeedableRng`'s `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (splitmix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling extension methods, matching the subset of `rand::Rng` used here.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform integer in `[0, n)` via rejection sampling.
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(below(rng, span) as $t)
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xorshift64* core).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // splitmix64 scramble so that close seeds diverge immediately.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            SmallRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for i in 0..1000usize {
            let v = rng.gen_range(0..=i);
            assert!(v <= i);
            let w = rng.gen_range(0usize..i + 1);
            assert!(w <= i);
        }
    }

    #[test]
    fn covers_the_whole_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
