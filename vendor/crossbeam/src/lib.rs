//! Offline shim of `crossbeam`: an unbounded MPMC channel (both `Sender`
//! and `Receiver` are cloneable) and a polling `select!` over `recv` arms,
//! which is the exact surface the live thread pools use.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    pub use crate::select;

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned when sending into a channel with no receivers left.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned when receiving from an empty, sender-less channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// No message available and all senders are gone.
        Disconnected,
    }

    /// The sending half; clone freely.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; clone freely (MPMC).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            self.inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake blocked receivers so they observe it.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self
                .inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self
                    .inner
                    .ready
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Non-blocking poll for `select!`: `Some(Ok)` on a message,
        /// `Some(Err)` on disconnect, `None` when merely empty.
        #[doc(hidden)]
        pub fn try_select(&self) -> Option<Result<T, RecvError>> {
            match self.try_recv() {
                Ok(v) => Some(Ok(v)),
                Err(TryRecvError::Disconnected) => Some(Err(RecvError)),
                Err(TryRecvError::Empty) => None,
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self
                .inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.inner.senders.load(Ordering::SeqCst) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.inner.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Waits on several `recv(rx) -> msg => body` arms, firing the first ready
/// one. A disconnected channel counts as ready with `Err(RecvError)`,
/// matching crossbeam's semantics. Implemented by polling with a short
/// sleep, which is plenty for coarse-grained worker handoff.
#[macro_export]
macro_rules! select {
    ($(recv($rx:expr) -> $msg:pat => $body:expr),+ $(,)?) => {{
        loop {
            let mut fired = false;
            $(
                if !fired {
                    if let ::std::option::Option::Some(r) = $rx.try_select() {
                        // A diverging arm body never reads the flag; that is
                        // fine, the remaining arms are skipped either way.
                        #[allow(unused_assignments)]
                        {
                            fired = true;
                        }
                        let $msg = r;
                        $body
                    }
                }
            )+
            if fired {
                break;
            }
            ::std::thread::sleep(::std::time::Duration::from_micros(100));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn mpmc_delivers_every_message_once() {
        let (tx, rx) = channel::unbounded::<u32>();
        let hits = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                let hits = hits.clone();
                std::thread::spawn(move || {
                    while rx.recv().is_ok() {
                        hits.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn try_recv_reports_empty_then_disconnected() {
        let (tx, rx) = channel::unbounded::<u32>();
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }

    #[test]
    fn select_fires_ready_arm() {
        let (tx_a, rx_a) = channel::unbounded::<u32>();
        let (_tx_b, rx_b) = channel::unbounded::<u32>();
        tx_a.send(5).unwrap();
        let mut got = 0;
        select! {
            recv(rx_a) -> m => got = m.unwrap(),
            recv(rx_b) -> m => { let _ = m; unreachable!("b never sends") },
        }
        assert_eq!(got, 5);
    }

    #[test]
    fn select_sees_disconnect() {
        let (tx_a, rx_a) = channel::unbounded::<u32>();
        let (tx_b, rx_b) = channel::unbounded::<u32>();
        drop(tx_a);
        let mut disconnected = false;
        select! {
            recv(rx_a) -> m => disconnected = m.is_err(),
            recv(rx_b) -> m => { let _ = m; unreachable!("b stays alive") },
        }
        assert!(disconnected);
        drop(tx_b);
    }
}
