//! Offline shim of `parking_lot`: a `Mutex` whose `lock()` never poisons,
//! backed by `std::sync::Mutex`.

use std::sync::PoisonError;

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock that, like `parking_lot`'s, has an infallible
/// `lock()` (a panicked holder does not poison the lock).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
