//! Offline shim of `criterion`: same macros and builder API, simple
//! median-of-samples wall-clock measurement underneath.
//!
//! Each benchmark warms up briefly, then takes `sample_size` samples whose
//! iteration counts are auto-tuned toward ~10 ms per sample, and prints the
//! median time per iteration. When cargo runs bench targets in test mode
//! (`--test` on the command line), every benchmark executes exactly once so
//! `cargo test` stays fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export for compatibility (`criterion::black_box`).
pub use std::hint::black_box;

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 20,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let samples = self.sample_size;
        let test_mode = self.test_mode;
        run_bench(name, samples, test_mode, &mut f);
        self
    }
}

/// A named benchmark id with an optional parameter, e.g. `churn/256`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Benchmarks `f`, which receives the input by reference.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        let samples = self.sample_size.unwrap_or(self.c.sample_size);
        run_bench(&full, samples, self.c.test_mode, &mut |b| f(b, input));
        self
    }

    /// Benchmarks `f` under this group's name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let samples = self.sample_size.unwrap_or(self.c.sample_size);
        run_bench(&full, samples, self.c.test_mode, &mut f);
        self
    }

    /// Ends the group (printing happens as benches run).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the body.
pub struct Bencher {
    /// Iterations to run this sample.
    iters: u64,
    /// Measured duration for those iterations.
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_once<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, test_mode: bool, f: &mut F) {
    if test_mode {
        run_once(f, 1);
        println!("test {name} ... ok (bench smoke run)");
        return;
    }
    // Warm up and estimate cost to pick an iteration count per sample.
    let mut iters: u64 = 1;
    let mut est = run_once(f, iters);
    while est < Duration::from_millis(5) && iters < 1 << 20 {
        iters *= 4;
        est = run_once(f, iters);
    }
    let per_iter = est.as_secs_f64() / iters as f64;
    // Target ~10ms per sample, capped so one bench stays under ~2s total.
    let budget = 2.0 / samples as f64;
    let target = 0.01f64.min(budget).max(per_iter);
    let sample_iters = ((target / per_iter).round() as u64).max(1);
    let mut times: Vec<f64> = (0..samples)
        .map(|_| run_once(f, sample_iters).as_secs_f64() / sample_iters as f64)
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("time is not NaN"));
    let median = times[times.len() / 2];
    let lo = times[0];
    let hi = times[times.len() - 1];
    println!(
        "{name:<44} time: [{} {} {}]",
        fmt_time(lo),
        fmt_time(median),
        fmt_time(hi)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default();
        c.sample_size(2);
        // Force test-mode so the unit test is instant regardless of args.
        c.test_mode = true;
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_with_input(BenchmarkId::new("f", 4), &4u32, |b, &n| {
                b.iter(|| n * 2);
            });
            g.finish();
        }
        c.bench_function("standalone", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran >= 1);
    }
}
