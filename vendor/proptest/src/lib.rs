//! Offline shim of `proptest`: the `proptest!` macro, composable strategies
//! (ranges, tuples, `prop_map`/`prop_filter`, `prop_oneof!`, collections) and
//! `prop_assert*!`, driven by a fixed deterministic RNG.
//!
//! Differences from the real crate, acceptable for this workspace's tests:
//! no shrinking (failures print the full generated inputs instead), no
//! failure persistence, and a per-test seed derived from the test name so
//! runs are reproducible.

/// Deterministic generator handed to strategies (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// FNV-1a hash of a test name, used as its fixed seed.
pub fn seed_of(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// Something that can generate values of an output type.
    pub trait Strategy {
        /// The generated value type.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Rejects values failing `f`; `whence` names the requirement.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T: Debug> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 10000 candidates: {}", self.whence);
        }
    }

    /// Uniform choice between boxed strategies (see `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T: Debug> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    int_strategy!(usize, u64, u32, u16, u8);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty strategy range");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
    tuple_strategy!(A, B, C, D, E, F, G, H, I);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

    /// Strategy for any value of a type with a canonical uniform generator.
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod arbitrary {
    //! `any::<T>()` entry point.

    use crate::strategy::Any;
    use std::marker::PhantomData;

    /// Uniform strategy over all values of `T` (where `Any<T>: Strategy`).
    pub fn any<T>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec`].
    pub trait SizeBounds {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeBounds for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeBounds for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty size range");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    impl SizeBounds for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S, B> {
        element: S,
        size: B,
    }

    /// Vector of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy, B: SizeBounds>(element: S, size: B) -> VecStrategy<S, B> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, B: SizeBounds> Strategy for VecStrategy<S, B> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test configuration and case-level error type.

    /// Configuration for a `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
        /// Accepted for compatibility; unused by the shim.
        pub max_shrink_iters: u32,
        /// Accepted for compatibility; unused by the shim.
        pub fork: bool,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
                fork: false,
            }
        }
    }

    /// A failed property within one generated case.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: String) -> TestCaseError {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced re-exports (`prop::collection::vec` etc.).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...)` item becomes
/// a `#[test]` that runs `cases` random inputs through the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::new($crate::seed_of(stringify!($name)));
                // Shadow each arg name with its strategy, then per case with
                // a drawn value (the strategy stays visible at loop entry).
                $(let $arg = $strat;)+
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), case + 1, config.cases, e, inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}
