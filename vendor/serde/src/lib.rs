//! Offline shim of `serde`: marker traits and derive re-exports only.
//!
//! The workspace derives `Serialize`/`Deserialize` on model types but never
//! serializes anything (there is no `serde_json` in the tree), so empty
//! marker traits and no-op derives are fully sufficient.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
