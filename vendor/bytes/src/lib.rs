//! Offline shim of `bytes`: reference-counted immutable byte buffers with
//! cheap slicing, a growable builder, and big-endian cursor traits — the
//! subset the live runtime's record blocks use.

use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, sliceable, immutable byte buffer.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wraps a static byte slice without copying semantics concerns.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view sharing the same backing allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&i) => i,
            Bound::Excluded(&i) => i + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&i) => i + 1,
            Bound::Excluded(&i) => i,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

/// Read cursor over a byte buffer (big-endian integers, like the real crate).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Next `n` readable bytes (here: all remaining).
    fn chunk(&self) -> &[u8];

    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "buffer underflow");
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Copies the next `n` bytes out as an owned [`Bytes`].
    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        assert!(self.remaining() >= n, "buffer underflow");
        let out = Bytes::from(self.chunk()[..n].to_vec());
        self.advance(n);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }
}

/// Write cursor over a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u32_and_slices() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32(0xDEAD_BEEF);
        b.put_slice(b"hello");
        let mut r = b.freeze();
        assert_eq!(r.len(), 9);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.copy_to_bytes(5).to_vec(), b"hello");
        assert!(!r.has_remaining());
    }

    #[test]
    fn slicing_shares_backing() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
        assert_eq!(b.len(), 6);
    }
}
