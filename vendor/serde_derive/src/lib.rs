//! Offline shim of `serde_derive`: the derives expand to nothing.
//!
//! Nothing in this workspace performs actual serialization; the derives
//! only mark types as serializable for future interchange work. Accepting
//! (and ignoring) `#[serde(...)]` attributes keeps source compatibility
//! with the real crate.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
