//! Quickstart: run the paper's word-count example (Fig 1) three ways.
//!
//! 1. For real, on the in-memory reference executor (actual counts).
//! 2. On the simulated Spark-like baseline (fine-grained pipelining).
//! 3. On the simulated monotasks executor (single-resource monotasks),
//!    then use the monotask records to print where the time went — the
//!    performance clarity the architecture exists for.
//!
//! Run with: `cargo run --release --example quickstart`

use cluster::{ClusterSpec, MachineSpec};
use perfmodel::{profile_stages, Scenario};
use workloads::wordcount::{wordcount_job, wordcount_reference};
use workloads::GIB;

fn main() {
    // 1. Real semantics on the reference executor.
    let lines = vec![
        "monotasks architecting for performance clarity".to_string(),
        "performance clarity in data analytics frameworks".to_string(),
        "each monotask uses exactly one resource".to_string(),
    ];
    let counts = wordcount_reference(lines, 4);
    let mut top: Vec<_> = counts.iter().collect();
    top.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    println!("reference executor word counts (top 5):");
    for (w, c) in top.iter().take(5) {
        println!("  {c}x {w}");
    }

    // 2 + 3. The same job shape at cluster scale, on both simulated engines.
    let cluster = ClusterSpec::new(5, MachineSpec::m2_4xlarge());
    let (job, blocks) = wordcount_job(20.0 * GIB, 5, 2);
    let spark = sparklike::run(
        &cluster,
        &[(job.clone(), blocks.clone())],
        &sparklike::SparkConfig::default(),
    );
    let mono = monotasks_core::run(
        &cluster,
        &[(job, blocks)],
        &monotasks_core::MonoConfig::default(),
    );
    println!("\n20 GiB word count on 5 workers (2 HDDs each):");
    println!(
        "  spark-like: {:>6.1} s    monotasks: {:>6.1} s",
        spark.jobs[0].duration_secs(),
        mono.jobs[0].duration_secs()
    );

    // Performance clarity: per-stage ideal resource times from the records.
    let profiles = profile_stages(&mono.records, &mono.jobs);
    let scen = Scenario::of_cluster(&cluster);
    println!("\nwhere the time went (ideal resource seconds per stage):");
    for p in &profiles {
        let t = perfmodel::model::ideal_times(p, &scen);
        println!(
            "  stage {}: cpu {:>5.1}s  disk {:>5.1}s  network {:>5.1}s  -> bottleneck: {}  (measured {:.1}s)",
            p.stage.0,
            t.cpu,
            t.disk,
            t.network,
            t.bottleneck().name(),
            p.measured_secs
        );
    }
}
