//! Auto-configuration (§7): the concurrency knob users shouldn't have to tune.
//!
//! Spark makes the user pick tasks-per-machine; the right answer depends on
//! the workload's resource mix, and a wrong answer costs real time. The
//! monotasks job scheduler derives concurrency from the hardware (cores +
//! disk slots + network outstanding + 1), because the per-resource schedulers
//! already control contention — so there is nothing left to tune.
//!
//! Run with: `cargo run --release --example autoconfig`

use cluster::{ClusterSpec, MachineSpec};
use workloads::{sort_job, SortConfig};

fn main() {
    let cluster = ClusterSpec::new(20, MachineSpec::m2_4xlarge());
    for (label, longs) in [
        ("CPU-heavy (1-long values)", 1usize),
        ("disk-heavy (100-long values)", 100),
    ] {
        let mut cfg = SortConfig::new(75.0, longs, 20, 2);
        cfg.map_tasks = Some(1600);
        cfg.reduce_tasks = Some(1600);
        let (job, blocks) = sort_job(&cfg);
        println!("{label}:");
        let mut best = f64::INFINITY;
        for slots in [2usize, 4, 8, 16, 32] {
            let sc = sparklike::SparkConfig {
                slots_per_machine: Some(slots),
                ..sparklike::SparkConfig::default()
            };
            let t = sparklike::run(&cluster, &[(job.clone(), blocks.clone())], &sc).jobs[0]
                .duration_secs();
            best = best.min(t);
            println!("  spark, {slots:>2} slots/machine: {t:>7.1} s");
        }
        let mono = monotasks_core::run(
            &cluster,
            &[(job, blocks)],
            &monotasks_core::MonoConfig::default(),
        )
        .jobs[0]
            .duration_secs();
        println!(
            "  monotasks, auto:        {mono:>7.1} s  ({:+.0}% vs best hand-tuned Spark)\n",
            100.0 * (mono - best) / best
        );
    }
}
