//! What-if advisor: answer the introduction's hardware questions for a job.
//!
//! "What hardware should I run on? Is it worth it to get enough memory to
//! cache on-disk data? How much will upgrading the network from 1Gbps to
//! 10Gbps improve performance?" (§1). The advisor runs a job once under the
//! monotasks executor and answers every question from the model — no re-runs,
//! no offline training.
//!
//! Run with: `cargo run --release --example whatif_advisor`

use cluster::{ClusterSpec, MachineSpec};
use perfmodel::{predict_job, profile_stages, Scenario};
use workloads::{sort_job, SortConfig};

fn main() {
    let cluster = ClusterSpec::new(20, MachineSpec::m2_4xlarge());
    let cfg = SortConfig::new(150.0, 4, 20, 2);
    let (job, blocks) = sort_job(&cfg);
    println!("running the 150 GiB sort once on 20 workers (2 HDDs, 1 Gbps)...");
    let out = monotasks_core::run(
        &cluster,
        &[(job, blocks)],
        &monotasks_core::MonoConfig::default(),
    );
    let measured = out.jobs[0].duration_secs();
    let profiles = profile_stages(&out.records, &out.jobs);
    let base = Scenario::of_cluster(&cluster);
    println!("measured: {measured:.1} s\n");

    let ask = |question: &str, scenario: Scenario| {
        let t = predict_job(&profiles, measured, &base, &scenario);
        println!(
            "{question}\n  -> predicted {t:.1} s ({:+.0}%)\n",
            100.0 * (t - measured) / measured
        );
    };

    let mut twice_disks = base.clone();
    twice_disks.machine.disks = vec![cluster::DiskSpec::hdd(); 4];
    ask("What if each machine had twice as many disks?", twice_disks);

    let mut ssds = base.clone();
    ssds.machine.disks = vec![cluster::DiskSpec::ssd(); 2];
    ask("What if we swapped the HDDs for SSDs?", ssds);

    let mut fat_pipe = base.clone();
    fat_pipe.machine.nic *= 10.0;
    ask(
        "What if we upgraded the network from 1 Gbps to 10 Gbps?",
        fat_pipe,
    );

    let mut cached = base.clone();
    cached.input_deserialized_in_memory = true;
    ask(
        "Is it worth buying memory to cache the input, deserialized?",
        cached,
    );

    let mut bigger = base.clone();
    bigger.machines = 40;
    ask("What about doubling the cluster instead?", bigger);

    let mut tungsten = base.clone();
    tungsten.serde_speedup = 2.0;
    ask(
        "What if we adopted a 2x faster serializer (the §9 Tungsten question)?",
        tungsten,
    );

    let mut dream = base.clone();
    dream.machines = 40;
    dream.machine.disks = vec![cluster::DiskSpec::ssd(); 2];
    dream.input_deserialized_in_memory = true;
    ask("All of the above at once?", dream);
}
