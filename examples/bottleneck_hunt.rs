//! Bottleneck hunt: "why did my workload run so slowly?" (§1, §6.5).
//!
//! Runs a few benchmark queries under the monotasks executor and, from the
//! monotask records alone, reports each stage's bottleneck resource, the
//! visible queue picture, and how much an infinitely fast disk / network /
//! CPU would help — the analysis that needed bespoke instrumentation in
//! NSDI'15 and falls out of the architecture here.
//!
//! Run with: `cargo run --release --example bottleneck_hunt`

use cluster::{ClusterSpec, MachineSpec};
use perfmodel::bottleneck::stage_bottlenecks;
use perfmodel::{optimized_resource_runtime, profile_stages, stage_imbalance, Scenario};
use simcore::ResourceKind;
use workloads::{bdb_job, BdbQuery};

fn main() {
    let cluster = ClusterSpec::new(5, MachineSpec::m2_4xlarge());
    let scen = Scenario::of_cluster(&cluster);
    for q in [BdbQuery::Q1c, BdbQuery::Q2c, BdbQuery::Q3c, BdbQuery::Q4] {
        let (job, blocks) = bdb_job(q, 5, 2);
        let out = monotasks_core::run(
            &cluster,
            &[(job, blocks)],
            &monotasks_core::MonoConfig::default(),
        );
        let profiles = profile_stages(&out.records, &out.jobs);
        let actual = out.jobs[0].duration_secs();
        println!("query {} finished in {actual:.1} s", q.label());
        for (p, b) in profiles.iter().zip(stage_bottlenecks(&profiles, &scen)) {
            let t = perfmodel::model::ideal_times(p, &scen);
            println!(
                "  stage {} ({:>5.1}s): bottleneck {:<7}  [cpu {:>5.1}  disk {:>5.1}  net {:>5.1}]",
                p.stage.0,
                p.measured_secs,
                b.name(),
                t.cpu,
                t.disk,
                t.network
            );
        }
        for imb in stage_imbalance(&out.records, 5) {
            if imb.worst() > 1.5 {
                println!(
                    "  stage {} load imbalance: busiest machine carries {:.1}x the mean — \
                     distrust the perfect-parallelism assumption here (§6.1)",
                    imb.stage.0,
                    imb.worst()
                );
            }
        }
        for r in [ResourceKind::Disk, ResourceKind::Network, ResourceKind::Cpu] {
            let opt = optimized_resource_runtime(&profiles, actual, &scen, r);
            println!(
                "  with an infinitely fast {:<7}: {:>6.1} s ({:+.0}%)",
                r.name(),
                opt,
                100.0 * (opt - actual) / actual
            );
        }
        println!();
    }
}
