//! Live word count: the monotasks architecture running for real.
//!
//! Real files, real threads-as-schedulers, real counts — and the same
//! performance-clarity arithmetic as the simulator, applied to wall-clock
//! monotask records: total compute time over cores vs. bytes over disks
//! tells you the bottleneck of the run you just did.
//!
//! Run with: `cargo run --release --example live_wordcount`

use std::sync::Arc;

use monotasks_live::{LiveEngine, LiveJob, LiveResource, Record};

fn main() {
    let base = std::env::temp_dir().join(format!("mono-live-example-{}", std::process::id()));
    let engine = LiveEngine::new(4, vec![base.join("disk0"), base.join("disk1")]);

    // Synthesize ~40 MB of text across 16 input blocks.
    let words = ["clarity", "monotask", "resource", "scheduler", "bottleneck"];
    let input: Vec<_> = (0..16)
        .map(|b| {
            let records: Vec<Record> = (0..20_000)
                .map(|i| {
                    let line = format!(
                        "{} {} {}",
                        words[(b + i) % 5],
                        words[(b + i * 3) % 5],
                        words[(b + i * 7) % 5]
                    );
                    Record::new(Vec::new(), line.into_bytes())
                })
                .collect();
            engine.write_input_block(b, &format!("block-{b}"), &records)
        })
        .collect();

    let job = LiveJob {
        input,
        map: Arc::new(|rec: Record| {
            String::from_utf8_lossy(&rec.value)
                .split_whitespace()
                .map(|w| Record::new(w.as_bytes().to_vec(), vec![1u8]))
                .collect()
        }),
        reduce: Arc::new(|key: &[u8], values: Vec<Vec<u8>>| {
            vec![Record::new(
                key.to_vec(),
                (values.len() as u64).to_be_bytes().to_vec(),
            )]
        }),
        reduce_partitions: 8,
        shuffle_to_disk: true,
        output_dir: base.join("out"),
    };

    let result = engine.run(job);
    println!(
        "word count over 16 blocks finished in {:.0} ms ({} monotasks)",
        result.wall.as_secs_f64() * 1000.0,
        result.summary.monotasks
    );
    let mut counts: Vec<(String, u64)> = LiveEngine::read_output(&result.output_files)
        .into_iter()
        .map(|r| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&r.value);
            (String::from_utf8(r.key).unwrap(), u64::from_be_bytes(b))
        })
        .collect();
    counts.sort_by_key(|c| std::cmp::Reverse(c.1));
    for (w, c) in &counts {
        println!("  {c:>7}  {w}");
    }

    // Performance clarity on the real run.
    let s = &result.summary;
    let cores = 4.0;
    let cpu_ideal = s.cpu_busy.as_secs_f64() / cores;
    let disk_busy = s.disk_busy.as_secs_f64() / 2.0;
    println!(
        "\nideal times: cpu {:.0} ms across {cores} cores, disk {:.0} ms across 2 disks",
        cpu_ideal * 1000.0,
        disk_busy * 1000.0
    );
    println!(
        "bottleneck of this run: {}",
        if cpu_ideal > disk_busy { "cpu" } else { "disk" }
    );
    let slowest_queue = result
        .records
        .iter()
        .max_by_key(|r| r.queue_wait())
        .expect("records nonempty");
    println!(
        "longest queue wait: {:.1} ms on {:?} — contention made visible (§3.1)",
        slowest_queue.queue_wait().as_secs_f64() * 1000.0,
        match slowest_queue.resource {
            LiveResource::Cpu => "the CPU pool".to_string(),
            LiveResource::Disk(d) => format!("disk {d}"),
        }
    );
}
