//! Fault injection and recovery, end to end: machine crashes mid-shuffle,
//! unrecoverable plans, stragglers, and degraded hardware through both
//! executors.

mod testsupport;

use cluster::{ClusterSpec, FaultPlan};
use dataflow::{RunError, StageId};
use monotasks_core::{MonoConfig, Purpose};
use simcore::SimTime;
use sparklike::SparkConfig;
use testsupport::sort4 as sort;
use workloads::{crash_all, mid_shuffle_crash};

fn cluster() -> ClusterSpec {
    testsupport::cluster(4)
}

/// A crash while the reduce stage is consuming shuffle output destroys
/// completed map outputs: both executors must resubmit the lost map tasks
/// (lineage), retry the aborted attempts, and still finish the job.
#[test]
fn both_executors_survive_a_mid_shuffle_crash() {
    let (job, blocks) = sort();
    let total_tasks: usize = job.stages.iter().map(|s| s.tasks.len()).sum();

    // Fault-free makespans locate "mid-shuffle".
    let mono_free = monotasks_core::try_run(
        &cluster(),
        &[(job.clone(), blocks.clone())],
        &MonoConfig::default(),
    )
    .expect("fault-free run");
    let crash_at = mono_free.makespan.as_secs_f64() * 0.5;
    let plan = mid_shuffle_crash(1, crash_at);

    let mono = monotasks_core::run_with_faults(
        &cluster(),
        &[(job.clone(), blocks.clone())],
        &MonoConfig::default(),
        &plan,
    )
    .expect("monotasks run must recover from one crash");
    assert!(mono.makespan > mono_free.makespan);
    let rec = &mono.jobs[0].recovery;
    assert!(rec.tasks_retried > 0, "no retries recorded: {rec:?}");
    assert!(
        rec.recompute_seconds > 0.0,
        "no lineage recomputation: {rec:?}"
    );
    assert_eq!(mono.stats.tasks_retried, rec.tasks_retried);
    // Every logical task completed at least once (compute monotasks carry the
    // multitask key); none ran on the dead machine after the crash.
    let crash_time = SimTime::from_secs_f64(crash_at);
    let mut done = std::collections::HashSet::new();
    for r in &mono.records {
        if r.purpose == Purpose::Compute {
            done.insert((r.multitask.stage, r.multitask.task));
        }
        assert!(
            r.machine != 1 || r.started <= crash_time,
            "monotask served by dead machine: {r:?}"
        );
    }
    assert_eq!(done.len(), total_tasks);
    // The job's output is intact: the reduce stage wrote all its bytes.
    let expected_out: f64 = job.stages[1]
        .tasks
        .iter()
        .map(|t| t.output.disk_bytes())
        .sum();
    let written: f64 = mono
        .records
        .iter()
        .filter(|r| r.purpose == Purpose::WriteOutput && r.multitask.stage == StageId(1))
        .map(|r| r.bytes)
        .sum();
    assert!(
        written >= expected_out * (1.0 - 1e-9),
        "lost output bytes: wrote {written} of {expected_out}"
    );

    let spark_free = sparklike::try_run(
        &cluster(),
        &[(job.clone(), blocks.clone())],
        &SparkConfig::default(),
    )
    .expect("fault-free run");
    let spark_plan = mid_shuffle_crash(1, spark_free.makespan.as_secs_f64() * 0.5);
    let spark = sparklike::run_with_faults(
        &cluster(),
        &[(job, blocks)],
        &SparkConfig::default(),
        &spark_plan,
    )
    .expect("spark-like run must recover from one crash");
    assert!(spark.makespan > spark_free.makespan);
    let rec = &spark.jobs[0].recovery;
    assert!(rec.tasks_retried > 0, "no retries recorded: {rec:?}");
    assert!(
        rec.recompute_seconds > 0.0,
        "no lineage recomputation: {rec:?}"
    );
    // Every logical task completed (recomputed map tasks appear twice —
    // once per successful execution — so count distinct coverage).
    let seen: std::collections::HashSet<_> =
        spark.tasks.iter().map(|t| (t.stage, t.task)).collect();
    assert_eq!(seen.len(), total_tasks);
    assert!(
        spark.tasks.len() > total_tasks,
        "a recomputed task should add a second record"
    );
}

/// Crashing every machine leaves nothing to recover on: a clean structured
/// error, not a livelock into the step budget.
#[test]
fn crashing_every_machine_is_a_clean_error() {
    let (job, blocks) = sort();
    let plan = crash_all(&cluster(), 5.0);
    let mono = monotasks_core::run_with_faults(
        &cluster(),
        &[(job.clone(), blocks.clone())],
        &MonoConfig::default(),
        &plan,
    );
    assert!(
        matches!(mono, Err(RunError::Unrecoverable { .. })),
        "expected Unrecoverable, got {mono:?}"
    );
    let spark =
        sparklike::run_with_faults(&cluster(), &[(job, blocks)], &SparkConfig::default(), &plan);
    assert!(
        matches!(spark, Err(RunError::Unrecoverable { .. })),
        "expected Unrecoverable, got {spark:?}"
    );
}

/// A straggling task shows up in the monotasks executor as an inflated
/// *compute* monotask — the per-resource records attribute the slowdown to
/// the specific resource (§6.6's clarity claim applied to faults).
#[test]
fn monotasks_records_attribute_a_straggler_to_cpu() {
    let (job, blocks) = sort();
    let plan = FaultPlan::new().straggle(0, 3, 5.0);
    let out = monotasks_core::run_with_faults(
        &cluster(),
        &[(job, blocks)],
        &MonoConfig::default(),
        &plan,
    )
    .expect("straggler must not fail the run");
    let compute_secs = |task: u32| -> f64 {
        out.records
            .iter()
            .filter(|r| {
                r.purpose == Purpose::Compute
                    && r.multitask.stage == StageId(0)
                    && r.multitask.task == dataflow::TaskId(task)
            })
            .map(|r| r.service_secs())
            .sum()
    };
    let straggler = compute_secs(3);
    let sibling = compute_secs(4);
    assert!(
        straggler > 3.0 * sibling,
        "straggler compute {straggler}s not inflated over sibling {sibling}s"
    );
}

/// With speculation on, the spark-like executor launches a copy of the
/// straggler on another machine and the copy's finish completes the task.
#[test]
fn sparklike_speculation_beats_a_straggler() {
    let (job, blocks) = sort();
    let plan = FaultPlan::new().straggle(0, 3, 8.0);
    let cfg = SparkConfig {
        speculation_multiplier: Some(1.5),
        ..SparkConfig::default()
    };
    let with_spec =
        sparklike::run_with_faults(&cluster(), &[(job.clone(), blocks.clone())], &cfg, &plan)
            .expect("speculative run");
    assert!(
        with_spec.jobs[0].recovery.tasks_speculated >= 1,
        "no speculative copy launched: {:?}",
        with_spec.jobs[0].recovery
    );
    assert!(with_spec.jobs[0].recovery.wasted_work_seconds > 0.0);
    let without =
        sparklike::run_with_faults(&cluster(), &[(job, blocks)], &SparkConfig::default(), &plan)
            .expect("non-speculative run");
    assert!(
        with_spec.makespan < without.makespan,
        "speculation did not help: {:?} vs {:?}",
        with_spec.makespan,
        without.makespan
    );
}

/// Degrading every disk for the whole run inflates both executors' makespans.
#[test]
fn disk_degradation_inflates_makespans() {
    let (job, blocks) = sort();
    let mut plan = FaultPlan::new();
    for m in 0..4 {
        for d in 0..2 {
            plan = plan.degrade_disk(m, d, 0.3, SimTime::ZERO, SimTime::from_secs(100_000));
        }
    }
    let mono_free = monotasks_core::try_run(
        &cluster(),
        &[(job.clone(), blocks.clone())],
        &MonoConfig::default(),
    )
    .unwrap();
    let mono = monotasks_core::run_with_faults(
        &cluster(),
        &[(job.clone(), blocks.clone())],
        &MonoConfig::default(),
        &plan,
    )
    .unwrap();
    assert!(mono.makespan > mono_free.makespan);
    let spark_free = sparklike::try_run(
        &cluster(),
        &[(job.clone(), blocks.clone())],
        &SparkConfig::default(),
    )
    .unwrap();
    let spark =
        sparklike::run_with_faults(&cluster(), &[(job, blocks)], &SparkConfig::default(), &plan)
            .unwrap();
    assert!(spark.makespan > spark_free.makespan);
}

/// A degraded NIC reaches the full-duplex fabric: with the fabric modeling
/// sender *and* receiver ports, halving one machine's link stretches the
/// shuffle (and the makespan) relative to the fault-free fabric run.
#[test]
fn degraded_link_stretches_shuffle_on_the_fabric_path() {
    let (job, blocks) = sort();
    let cfg = MonoConfig {
        full_duplex_network: true,
        ..MonoConfig::default()
    };
    let free = monotasks_core::try_run(&cluster(), &[(job.clone(), blocks.clone())], &cfg)
        .expect("fault-free fabric run");
    let plan = FaultPlan::new().degrade_link(1, 0.25, SimTime::ZERO, SimTime::from_secs(100_000));
    let degraded =
        monotasks_core::run_with_faults(&cluster(), &[(job.clone(), blocks.clone())], &cfg, &plan)
            .expect("degraded-link fabric run");
    assert!(
        degraded.makespan > free.makespan,
        "degraded link did not stretch the fabric run: {:?} vs {:?}",
        degraded.makespan,
        free.makespan
    );
    // The slowdown is visible where the fabric says it should be: network
    // monotasks (shuffle reads) take longer in aggregate, not just the tail.
    let net_secs = |out: &monotasks_core::MonoRunOutput| -> f64 {
        out.records
            .iter()
            .filter(|r| r.purpose == Purpose::NetTransfer)
            .map(|r| r.service_secs())
            .sum()
    };
    assert!(
        net_secs(&degraded) > net_secs(&free) * 1.5,
        "shuffle time not stretched: {} vs {}",
        net_secs(&degraded),
        net_secs(&free)
    );
}

/// ε-fair fills and completion coalescing compose with fault injection: a
/// crash landing mid-run (inside coalescing windows) yields the exact same
/// recovery, records, and makespan on every execution.
#[test]
fn approximate_fabric_with_a_crash_is_deterministic() {
    let (job, blocks) = sort();
    let cfg = MonoConfig {
        full_duplex_network: true,
        fabric_epsilon: 0.01,
        fabric_quantum_secs: 1e-3,
        ..MonoConfig::default()
    };
    let free = monotasks_core::try_run(&cluster(), &[(job.clone(), blocks.clone())], &cfg)
        .expect("fault-free approximate run");
    let plan = mid_shuffle_crash(1, free.makespan.as_secs_f64() * 0.5);
    let run = || {
        monotasks_core::run_with_faults(&cluster(), &[(job.clone(), blocks.clone())], &cfg, &plan)
            .expect("approximate run must still recover from one crash")
    };
    let a = run();
    let b = run();
    assert!(a.jobs[0].recovery.tasks_retried > 0, "crash had no effect");
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.stats.events, b.stats.events);
    assert_eq!(a.stats.reallocs, b.stats.reallocs);
    assert_eq!(format!("{:?}", a.records), format!("{:?}", b.records));
}

/// Up-front validation rejects degenerate configs and plans with a
/// descriptive `InvalidConfig` instead of failing mid-run.
#[test]
fn validation_rejects_bad_configs_and_plans() {
    let (job, blocks) = sort();
    let bad_cfg = MonoConfig {
        max_steps: 0,
        ..MonoConfig::default()
    };
    assert!(matches!(
        monotasks_core::run_with_faults(
            &cluster(),
            &[(job.clone(), blocks.clone())],
            &bad_cfg,
            &FaultPlan::new()
        ),
        Err(RunError::InvalidConfig(_))
    ));
    let bad_spark = SparkConfig {
        slots_per_machine: Some(0),
        ..SparkConfig::default()
    };
    assert!(matches!(
        sparklike::run_with_faults(
            &cluster(),
            &[(job.clone(), blocks.clone())],
            &bad_spark,
            &FaultPlan::new()
        ),
        Err(RunError::InvalidConfig(_))
    ));
    // Crash of a machine the cluster does not have.
    let bad_plan = FaultPlan::new().crash(99, SimTime::from_secs(1));
    assert!(matches!(
        monotasks_core::run_with_faults(
            &cluster(),
            &[(job.clone(), blocks.clone())],
            &MonoConfig::default(),
            &bad_plan
        ),
        Err(RunError::InvalidConfig(_))
    ));
    assert!(matches!(
        sparklike::run_with_faults(
            &cluster(),
            &[(job, blocks)],
            &SparkConfig::default(),
            &bad_plan
        ),
        Err(RunError::InvalidConfig(_))
    ));
}

/// A retry budget of zero fails fast on the first abort.
#[test]
fn zero_retry_budget_fails_fast() {
    let (job, blocks) = sort();
    let mono_free = monotasks_core::try_run(
        &cluster(),
        &[(job.clone(), blocks.clone())],
        &MonoConfig::default(),
    )
    .unwrap();
    let plan = mid_shuffle_crash(1, mono_free.makespan.as_secs_f64() * 0.5);
    let cfg = MonoConfig {
        max_task_retries: 0,
        ..MonoConfig::default()
    };
    let out = monotasks_core::run_with_faults(&cluster(), &[(job, blocks)], &cfg, &plan);
    assert!(
        matches!(out, Err(RunError::RetriesExhausted { attempts: 1, .. })),
        "expected RetriesExhausted, got {out:?}"
    );
}
