//! Execution-template correctness: plan-once/stamp-many is an *optimization*,
//! so a templated run must be bit-identical to the untemplated control path —
//! same makespan bits, same event count, byte-identical monotask records —
//! under arbitrary workloads, fault plans, and speculation settings. Crashes
//! that move shuffle placement must invalidate the cached template, count the
//! invalidation, and rebuild deterministically.

mod testsupport;

use dataflow::StageId;
use monotasks_core::MonoConfig;
use proptest::prelude::*;
use testsupport::{random_job, sort4};
use workloads::{mid_shuffle_crash, sweep_plan};

fn cluster() -> cluster::ClusterSpec {
    testsupport::cluster(4)
}

/// Paired configs differing only in the template knob.
fn on_off(speculate: bool) -> (MonoConfig, MonoConfig) {
    let on = MonoConfig {
        collect_traces: false,
        mono_speculation_multiplier: speculate.then_some(1.5),
        mono_speculation_min_runtime: speculate.then_some(0.05),
        ..MonoConfig::default()
    };
    let off = MonoConfig {
        execution_templates: false,
        ..on.clone()
    };
    (on, off)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Templates on vs off: bit-identical makespans (`f64::to_bits`),
    /// identical event counts, byte-identical records, and identical stage
    /// windows and recovery counters, across random topologies × fault
    /// plans × speculation settings. Only the template bookkeeping itself
    /// may differ between the two runs.
    #[test]
    fn templates_are_bit_identical_to_the_untemplated_path(
        rj in random_job(),
        seed in 0u64..1000,
        intensity in 0.0f64..2.0,
        speculate in any::<bool>(),
    ) {
        let (cluster, job, blocks) = rj.build_replicated(2);
        let tasks_per_stage = job.stages.iter().map(|s| s.tasks.len()).max().unwrap_or(1);
        let plan = sweep_plan(seed, &cluster, 60.0, job.stages.len(), tasks_per_stage, intensity);
        let (cfg_on, cfg_off) = on_off(speculate);
        // The templated path is the default; the control path is the opt-out.
        prop_assert!(MonoConfig::default().execution_templates);

        let on = monotasks_core::run_with_faults(
            &cluster, &[(job.clone(), blocks.clone())], &cfg_on, &plan,
        );
        let off = monotasks_core::run_with_faults(
            &cluster, &[(job, blocks)], &cfg_off, &plan,
        );
        match (&on, &off) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(
                    x.makespan.as_secs_f64().to_bits(),
                    y.makespan.as_secs_f64().to_bits()
                );
                prop_assert_eq!(x.stats.events, y.stats.events);
                prop_assert_eq!(format!("{:?}", x.records), format!("{:?}", y.records));
                prop_assert_eq!(x.jobs.len(), y.jobs.len());
                for (ja, jb) in x.jobs.iter().zip(&y.jobs) {
                    prop_assert_eq!(ja.recovery, jb.recovery);
                    prop_assert_eq!(ja.stages.len(), jb.stages.len());
                    for (sa, sb) in ja.stages.iter().zip(&jb.stages) {
                        prop_assert_eq!(sa.start, sb.start);
                        prop_assert_eq!(sa.end, sb.end);
                        prop_assert_eq!(sa.control.tasks_started, sb.control.tasks_started);
                        // The opt-out path must not touch the template cache.
                        prop_assert_eq!(sb.control.template_hits, 0);
                        prop_assert_eq!(sb.control.template_misses, 0);
                        prop_assert_eq!(sb.control.template_invalidations, 0);
                    }
                }
            }
            (Err(x), Err(y)) => prop_assert_eq!(x, y),
            _ => prop_assert!(false, "templates changed recoverability"),
        }
    }
}

/// Fault-free sort: the reduce stage derives its control decision exactly
/// once; every other task stamps from the cached template. Map stages never
/// consult the cache (their expansion has no sender sweep to save).
#[test]
fn fault_free_reduce_stage_builds_one_template() {
    let (job, blocks) = sort4();
    let n_reduce = job.stages[1].tasks.len() as u64;
    let out = monotasks_core::run(&cluster(), &[(job, blocks)], &MonoConfig::default());
    let c = out.jobs[0].stage(StageId(1)).expect("reduce stage").control;
    assert_eq!(c.template_misses, 1, "{c:?}");
    assert_eq!(c.template_hits, n_reduce - 1, "{c:?}");
    assert_eq!(c.template_invalidations, 0, "{c:?}");
    assert_eq!(c.tasks_started, n_reduce, "{c:?}");
    let m = out.jobs[0].stage(StageId(0)).expect("map stage").control;
    assert_eq!(m.template_hits + m.template_misses, 0, "{m:?}");
    // The per-stage counters roll up into the run-level stats.
    assert_eq!(out.stats.template_hits, n_reduce - 1);
    assert_eq!(out.stats.template_misses, 1);
}

/// A crash while the reduce stage is consuming shuffle output destroys map
/// outputs and moves placement: the cached template must be dropped (counted
/// as an invalidation), rebuilt deterministically, and the recovered run must
/// still match the untemplated path bit for bit under the same fault plan.
#[test]
fn mid_stage_crash_invalidates_and_rebuilds_the_template() {
    let (job, blocks) = sort4();
    let free = monotasks_core::try_run(
        &cluster(),
        &[(job.clone(), blocks.clone())],
        &MonoConfig::default(),
    )
    .expect("fault-free run");
    let plan = mid_shuffle_crash(1, free.makespan.as_secs_f64() * 0.5);
    let run = |cfg: MonoConfig| {
        monotasks_core::run_with_faults(&cluster(), &[(job.clone(), blocks.clone())], &cfg, &plan)
            .expect("one crash must be recoverable")
    };

    let a = run(MonoConfig::default());
    let c = a.jobs[0].stage(StageId(1)).expect("reduce stage").control;
    assert!(
        c.template_invalidations >= 1,
        "crash did not invalidate: {c:?}"
    );
    // Initial build plus at least one post-crash rebuild.
    assert!(c.template_misses >= 2, "{c:?}");
    // Every reduce attempt either hit the cache or rebuilt it.
    assert_eq!(
        c.template_hits + c.template_misses,
        c.tasks_started,
        "{c:?}"
    );

    // Rebuild is deterministic: identical reports modulo host wall time.
    let b = run(MonoConfig::default());
    assert_eq!(
        testsupport::jobs_debug_sans_host_time(&a.jobs),
        testsupport::jobs_debug_sans_host_time(&b.jobs)
    );

    // And bit-identical to the untemplated path under the same plan.
    let off = run(MonoConfig {
        execution_templates: false,
        ..MonoConfig::default()
    });
    assert_eq!(
        a.makespan.as_secs_f64().to_bits(),
        off.makespan.as_secs_f64().to_bits()
    );
    assert_eq!(a.stats.events, off.stats.events);
    assert_eq!(format!("{:?}", a.records), format!("{:?}", off.records));
}
