//! Fault-replay model tolerance: `perfmodel::replay` predictions must stay
//! within the documented error band of simulated ground truth on the
//! `fault_sweep` workload (5 × m2.4xlarge, 10 GiB sort, seed 42) at the
//! committed intensity points 0 and 1.
//!
//! Intensity 0 must be *exact* — an empty plan adds no penalties — and
//! intensity 1 (one crash, two degraded disks, one degraded link, two
//! stragglers) is where the first-order additive model earns its band; the
//! measured error is +13.4%, asserted below the ±25% documented bound with
//! room for legitimate simulator evolution.

use cluster::{ClusterSpec, FaultPlan, MachineSpec};
use monotasks_core::MonoConfig;
use workloads::{sort_job, sweep_plan, SortConfig};

const MACHINES: usize = 5;
const GIB_PER_MACHINE: f64 = 2.0;
const SEED: u64 = 42;

fn cluster() -> ClusterSpec {
    ClusterSpec::new(MACHINES, MachineSpec::m2_4xlarge())
}

fn workload() -> (dataflow::JobSpec, dataflow::BlockMap) {
    sort_job(&SortConfig::new(
        GIB_PER_MACHINE * MACHINES as f64,
        10,
        MACHINES,
        2,
    ))
}

#[test]
fn replay_predictions_stay_inside_the_documented_band() {
    let cl = cluster();
    let (job, blocks) = workload();

    // Fault-free baseline: the profiles every prediction reuses.
    let base = monotasks_core::run(
        &cl,
        &[(job.clone(), blocks.clone())],
        &MonoConfig::default(),
    );
    let baseline_s = base.makespan.as_secs_f64();
    let profiles = perfmodel::profile_stages(&base.records, &base.jobs);
    let opts = perfmodel::ReplayOptions {
        scenario: perfmodel::Scenario::of_cluster(&cl),
        tasks_per_stage: profiles
            .iter()
            .map(|p| job.stages[p.stage.0 as usize].tasks.len())
            .collect(),
    };
    let tasks0 = job.stages[0].tasks.len();

    for intensity in [0.0, 1.0] {
        let plan = if intensity <= 0.0 {
            FaultPlan::new()
        } else {
            sweep_plan(SEED, &cl, baseline_s, job.stages.len(), tasks0, intensity)
        };
        let sim = monotasks_core::run_with_faults(
            &cl,
            &[(job.clone(), blocks.clone())],
            &MonoConfig::default(),
            &plan,
        )
        .expect("sweep plan is survivable at these intensities");
        let measured_s = sim.makespan.as_secs_f64();

        let pred = perfmodel::replay(&profiles, &base.jobs, baseline_s, &plan, &opts);
        let err = pred.relative_error(measured_s);

        if intensity == 0.0 {
            assert_eq!(
                pred.predicted_secs, baseline_s,
                "empty plan must predict the baseline exactly"
            );
            assert!(pred.penalties.is_empty());
        } else {
            // Faults only slow a run down in this model.
            assert!(
                pred.predicted_secs > baseline_s,
                "a non-empty plan must carry positive penalties"
            );
            // Attribution covers the whole prediction.
            let total: f64 = pred.penalties.iter().map(|p| p.penalty_secs).sum();
            assert!(
                (pred.predicted_secs - baseline_s - total).abs() < 1e-9,
                "penalties must sum to the predicted slowdown"
            );
        }
        assert!(
            err.abs() <= perfmodel::DOCUMENTED_ERROR_BAND,
            "intensity {intensity}: predicted {:.3}s vs simulated {measured_s:.3}s \
             (error {:+.1}%) exceeds the documented ±{:.0}% band",
            pred.predicted_secs,
            err * 100.0,
            perfmodel::DOCUMENTED_ERROR_BAND * 100.0
        );
    }
}
