//! Cross-crate integration tests: both executors on real workloads, the
//! performance model closing the loop against actual re-runs, and the
//! paper's headline claims at miniature scale.

use cluster::{ClusterSpec, DiskSpec, MachineSpec};
use dataflow::{BlockMap, JobSpec};
use perfmodel::{predict_job, profile_stages, Scenario};
use workloads::{bdb_job, ml_jobs, sort_job, wordcount_job, BdbQuery, MlConfig, SortConfig};

fn hdd_cluster(machines: usize) -> ClusterSpec {
    ClusterSpec::new(machines, MachineSpec::m2_4xlarge())
}

fn run_both(cluster: &ClusterSpec, job: JobSpec, blocks: BlockMap) -> (f64, f64) {
    let mono = monotasks_core::run(
        cluster,
        &[(job.clone(), blocks.clone())],
        &monotasks_core::MonoConfig::default(),
    );
    let spark = sparklike::run(
        cluster,
        &[(job, blocks)],
        &sparklike::SparkConfig::default(),
    );
    (mono.jobs[0].duration_secs(), spark.jobs[0].duration_secs())
}

#[test]
fn executors_agree_within_a_factor_on_every_workload_family() {
    let cluster = hdd_cluster(4);
    // Enough tasks for several waves per core — the regime both the paper
    // and Fig 8 target ("the default configuration of all three workloads
    // broke jobs into enough tasks", §5.3).
    let mut sort_cfg = SortConfig::new(4.0, 10, 4, 2);
    sort_cfg.map_tasks = Some(128);
    sort_cfg.reduce_tasks = Some(128);
    let mut jobs: Vec<(JobSpec, BlockMap)> = vec![
        sort_job(&sort_cfg),
        wordcount_job(4.0 * workloads::GIB, 4, 2),
    ];
    jobs.push(bdb_job(BdbQuery::Q1b, 4, 2));
    for (job, blocks) in jobs {
        let name = job.name.clone();
        let (mono, spark) = run_both(&cluster, job, blocks);
        let ratio = mono / spark;
        assert!(
            (0.5..=1.6).contains(&ratio),
            "{name}: mono {mono:.1}s vs spark {spark:.1}s (ratio {ratio:.2})"
        );
    }
}

#[test]
fn ml_workload_runs_on_both_executors_with_parity() {
    let cfg = MlConfig {
        machines: 4,
        iterations: 1,
        rows: 1e5,
        cols: 1024.0,
    };
    let cluster = ClusterSpec::new(4, MachineSpec::i2_2xlarge(2));
    for (job, blocks) in ml_jobs(&cfg) {
        let (mono, spark) = run_both(&cluster, job, blocks);
        let ratio = mono / spark;
        assert!((0.7..=1.4).contains(&ratio), "ratio {ratio:.2}");
    }
}

#[test]
fn model_predicts_identity_scenario_exactly() {
    let cluster = hdd_cluster(4);
    let (job, blocks) = sort_job(&SortConfig::new(4.0, 10, 4, 2));
    let out = monotasks_core::run(
        &cluster,
        &[(job, blocks)],
        &monotasks_core::MonoConfig::default(),
    );
    let profiles = profile_stages(&out.records, &out.jobs);
    let scen = Scenario::of_cluster(&cluster);
    let measured = out.jobs[0].duration_secs();
    let predicted = predict_job(&profiles, measured, &scen, &scen);
    assert!((predicted - measured).abs() / measured < 1e-9);
}

#[test]
fn model_predicts_disk_removal_within_paper_error_band() {
    // Fig 12 in miniature: the worst-case error the paper reports is 28%.
    let two = hdd_cluster(4);
    let mut m1 = MachineSpec::m2_4xlarge();
    m1.disks = vec![DiskSpec::hdd()];
    let one = ClusterSpec::new(4, m1);
    for longs in [4usize, 25] {
        let mk = |disks: usize| {
            let mut cfg = SortConfig::new(6.0, longs, 4, disks);
            cfg.map_tasks = Some(128);
            cfg.reduce_tasks = Some(128);
            sort_job(&cfg)
        };
        let (job, blocks) = mk(2);
        let base = monotasks_core::run(
            &two,
            &[(job, blocks)],
            &monotasks_core::MonoConfig::default(),
        );
        let profiles = profile_stages(&base.records, &base.jobs);
        let predicted = predict_job(
            &profiles,
            base.jobs[0].duration_secs(),
            &Scenario::of_cluster(&two),
            &Scenario::of_cluster(&one),
        );
        let (job1, blocks1) = mk(1);
        let actual = monotasks_core::run(
            &one,
            &[(job1, blocks1)],
            &monotasks_core::MonoConfig::default(),
        )
        .jobs[0]
            .duration_secs();
        let err = (predicted - actual).abs() / actual;
        // The paper's worst full-scale error is 28% (Fig 12); allow a
        // little extra at this miniature scale.
        assert!(
            err < 0.35,
            "longs={longs}: predicted {predicted:.1}, actual {actual:.1} ({:.0}% err)",
            err * 100.0
        );
    }
}

#[test]
fn model_predicts_in_memory_input_within_paper_error_band() {
    // §6.3 in miniature: the paper reports a 4% error; allow 15%.
    let cluster = ClusterSpec::new(4, MachineSpec::i2_2xlarge(2));
    let cfg = SortConfig::new(6.0, 8, 4, 2);
    let (job, blocks) = sort_job(&cfg);
    let base = monotasks_core::run(
        &cluster,
        &[(job, blocks)],
        &monotasks_core::MonoConfig::default(),
    );
    let profiles = profile_stages(&base.records, &base.jobs);
    let old = Scenario::of_cluster(&cluster);
    let mut new = old.clone();
    new.input_deserialized_in_memory = true;
    let predicted = predict_job(&profiles, base.jobs[0].duration_secs(), &old, &new);
    let mut mem = cfg.clone();
    mem.input_in_memory = true;
    let (job_m, blocks_m) = sort_job(&mem);
    let actual = monotasks_core::run(
        &cluster,
        &[(job_m, blocks_m)],
        &monotasks_core::MonoConfig::default(),
    )
    .jobs[0]
        .duration_secs();
    let err = (predicted - actual).abs() / actual;
    assert!(err < 0.15, "{:.1}% error", err * 100.0);
    // And the in-memory run is genuinely faster.
    assert!(actual < base.jobs[0].duration_secs());
}

#[test]
fn monotask_attribution_is_exact_for_concurrent_jobs() {
    // Fig 16 in miniature.
    let cluster = hdd_cluster(4);
    let mk = |longs: usize| sort_job(&SortConfig::new(3.0, longs, 4, 2));
    let (a, ba) = mk(10);
    let (b, bb) = mk(50);
    let out = monotasks_core::run(
        &cluster,
        &[(a.clone(), ba), (b.clone(), bb)],
        &monotasks_core::MonoConfig::default(),
    );
    for (ji, job) in [(0u32, &a), (1u32, &b)] {
        let truth = perfmodel::strawman::true_resource_use(job, 4);
        let est = perfmodel::profile::attribute_by_records(&out.records, dataflow::JobId(ji));
        let err = |t: f64, e: f64| (e - t).abs() / t;
        assert!(err(truth.cpu_secs, est.cpu_secs) < 0.01);
        assert!(err(truth.disk_bytes, est.disk_bytes) < 0.01);
        assert!(err(truth.net_bytes, est.net_bytes) < 0.05);
    }
}

#[test]
fn bdb_queries_complete_on_both_executors_with_sane_bottlenecks() {
    // A smaller benchmark sweep than Fig 5/14, exercising all query shapes.
    let cluster = hdd_cluster(5);
    let scen = Scenario::of_cluster(&cluster);
    for q in [
        BdbQuery::Q1a,
        BdbQuery::Q1c,
        BdbQuery::Q2b,
        BdbQuery::Q3b,
        BdbQuery::Q4,
    ] {
        let (job, blocks) = bdb_job(q, 5, 2);
        let out = monotasks_core::run(
            &cluster,
            &[(job.clone(), blocks.clone())],
            &monotasks_core::MonoConfig::default(),
        );
        let profiles = profile_stages(&out.records, &out.jobs);
        assert_eq!(profiles.len(), job.stages.len(), "{q:?}");
        for p in &profiles {
            let t = perfmodel::model::ideal_times(p, &scen);
            // Every stage's measured time is at least its modeled lower
            // bound and within a small multiple of it.
            assert!(
                p.measured_secs >= t.stage_time() * 0.99,
                "{q:?} stage {:?}: measured {} below ideal {}",
                p.stage,
                p.measured_secs,
                t.stage_time()
            );
            assert!(
                p.measured_secs <= t.stage_time() * 4.0 + 2.0,
                "{q:?} stage {:?}: measured {} far above ideal {}",
                p.stage,
                p.measured_secs,
                t.stage_time()
            );
        }
    }
}
