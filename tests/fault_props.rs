//! Property tests for the fault-injection layer.
//!
//! Two contracts: (1) an *empty* fault plan leaves both executors
//! bit-identical to the plan-free entry points — every makespan, record
//! timing, and event count — and (2) fault plans generated from the same
//! seed and injected twice produce identical outcomes, including identical
//! structured errors when the plan is unrecoverable.

use cluster::{ClusterSpec, FaultPlan, MachineSpec};
use dataflow::{BlockMap, CostModel, JobBuilder, JobSpec};
use monotasks_core::MonoConfig;
use proptest::prelude::*;
use sparklike::SparkConfig;
use workloads::sweep_plan;

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

#[derive(Clone, Debug)]
struct RandomJob {
    machines: usize,
    total_gib: f64,
    map_tasks: usize,
    reduce_tasks: Option<usize>,
    in_memory_shuffle: bool,
}

impl RandomJob {
    fn build(&self) -> (ClusterSpec, JobSpec, BlockMap) {
        let total = self.total_gib * GIB;
        let mut b = JobBuilder::new("prop", CostModel::spark_1_3()).read_disk(
            total,
            total / 64.0,
            total / self.map_tasks as f64,
        );
        b = b.map(1.0, 1.0, true);
        let job = match self.reduce_tasks {
            Some(r) => b
                .shuffle(r, self.in_memory_shuffle)
                .map(1.0, 1.0, true)
                .write_disk(1.0),
            None => b.write_disk(1.0),
        };
        let cluster = ClusterSpec::new(self.machines, MachineSpec::m2_4xlarge());
        let blocks =
            BlockMap::round_robin(JobBuilder::blocks_allocated(&job).max(1), self.machines, 2);
        (cluster, job, blocks)
    }
}

fn random_job() -> impl Strategy<Value = RandomJob> {
    (
        2usize..=4,
        0.25f64..=2.0,
        1usize..=16,
        prop_oneof![Just(None), (1usize..=12).prop_map(Some)],
        any::<bool>(),
    )
        .prop_map(
            |(machines, total_gib, map_tasks, reduce_tasks, ims)| RandomJob {
                machines,
                total_gib,
                map_tasks,
                reduce_tasks,
                in_memory_shuffle: ims,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Empty plan ⇒ bit-identical to the plan-free path, both executors.
    #[test]
    fn empty_plan_is_bit_identical(rj in random_job()) {
        let (cluster, job, blocks) = rj.build();

        let mono_cfg = MonoConfig::default();
        let plain = monotasks_core::run(&cluster, &[(job.clone(), blocks.clone())], &mono_cfg);
        let faulted = monotasks_core::run_with_faults(
            &cluster, &[(job.clone(), blocks.clone())], &mono_cfg, &FaultPlan::new(),
        ).expect("empty plan must not fail");
        prop_assert_eq!(plain.makespan, faulted.makespan);
        prop_assert_eq!(plain.stats.events, faulted.stats.events);
        prop_assert_eq!(plain.records.len(), faulted.records.len());
        for (a, b) in plain.records.iter().zip(&faulted.records) {
            prop_assert_eq!(a.queued, b.queued);
            prop_assert_eq!(a.started, b.started);
            prop_assert_eq!(a.ended, b.ended);
            prop_assert_eq!(a.machine, b.machine);
        }
        prop_assert!(faulted.jobs[0].recovery.is_zero());

        let spark_cfg = SparkConfig::default();
        let plain = sparklike::run(&cluster, &[(job.clone(), blocks.clone())], &spark_cfg);
        let faulted = sparklike::run_with_faults(
            &cluster, &[(job, blocks)], &spark_cfg, &FaultPlan::new(),
        ).expect("empty plan must not fail");
        prop_assert_eq!(plain.makespan, faulted.makespan);
        prop_assert_eq!(plain.stats.events, faulted.stats.events);
        prop_assert_eq!(plain.tasks.len(), faulted.tasks.len());
        for (a, b) in plain.tasks.iter().zip(&faulted.tasks) {
            prop_assert_eq!(a.start, b.start);
            prop_assert_eq!(a.end, b.end);
            prop_assert_eq!(a.machine, b.machine);
        }
        prop_assert!(faulted.jobs[0].recovery.is_zero());
    }

    /// Same seed, same intensity ⇒ identical outcome on repeat, including
    /// identical errors for unrecoverable plans.
    #[test]
    fn seeded_plans_are_reproducible(
        rj in random_job(),
        seed in 0u64..1000,
        intensity in 0.0f64..2.5,
    ) {
        let (cluster, job, blocks) = rj.build();
        let tasks_per_stage = job.stages.iter().map(|s| s.tasks.len()).max().unwrap_or(1);
        let plan = sweep_plan(seed, &cluster, 60.0, job.stages.len(), tasks_per_stage, intensity);
        let again = sweep_plan(seed, &cluster, 60.0, job.stages.len(), tasks_per_stage, intensity);
        prop_assert_eq!(plan.events(), again.events());

        let mono_cfg = MonoConfig { collect_traces: false, ..MonoConfig::default() };
        let a = monotasks_core::run_with_faults(
            &cluster, &[(job.clone(), blocks.clone())], &mono_cfg, &plan,
        );
        let b = monotasks_core::run_with_faults(
            &cluster, &[(job.clone(), blocks.clone())], &mono_cfg, &plan,
        );
        match (&a, &b) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(x.makespan, y.makespan);
                prop_assert_eq!(x.stats.events, y.stats.events);
                prop_assert_eq!(x.stats.tasks_retried, y.stats.tasks_retried);
                prop_assert_eq!(x.stats.wasted_work_nanos, y.stats.wasted_work_nanos);
            }
            (Err(x), Err(y)) => prop_assert_eq!(x, y),
            _ => prop_assert!(false, "one run failed, the other did not"),
        }

        let spark_cfg = SparkConfig {
            speculation_multiplier: Some(1.5),
            ..SparkConfig::default()
        };
        let a = sparklike::run_with_faults(&cluster, &[(job.clone(), blocks.clone())], &spark_cfg, &plan);
        let b = sparklike::run_with_faults(&cluster, &[(job, blocks)], &spark_cfg, &plan);
        match (&a, &b) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(x.makespan, y.makespan);
                prop_assert_eq!(x.stats.events, y.stats.events);
                prop_assert_eq!(x.stats.tasks_retried, y.stats.tasks_retried);
                prop_assert_eq!(x.stats.tasks_speculated, y.stats.tasks_speculated);
            }
            (Err(x), Err(y)) => prop_assert_eq!(x, y),
            _ => prop_assert!(false, "one run failed, the other did not"),
        }
    }
}
