//! Property tests for the fault-injection and speculation layers.
//!
//! Contracts: (1) an *empty* fault plan leaves both executors bit-identical
//! to the plan-free entry points — every makespan, record timing, and event
//! count; (2) fault plans generated from the same seed and injected twice
//! produce identical outcomes, including identical structured errors when
//! the plan is unrecoverable; (3) with both monotask-speculation knobs
//! `None` the executor is bit-identical to a build predating the feature —
//! checked via `f64::to_bits` on the makespan; and (4) speculation enabled
//! is still fully deterministic: two runs of the same seeded straggler plan
//! agree byte-for-byte on reports and counters.

mod testsupport;

use cluster::FaultPlan;
use monotasks_core::MonoConfig;
use proptest::prelude::*;
use simcore::SimTime;
use sparklike::SparkConfig;
use testsupport::random_job;
use workloads::{partition_plan, sweep_plan};

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Empty plan ⇒ bit-identical to the plan-free path, both executors.
    #[test]
    fn empty_plan_is_bit_identical(rj in random_job()) {
        let (cluster, job, blocks) = rj.build();

        let mono_cfg = MonoConfig::default();
        let plain = monotasks_core::run(&cluster, &[(job.clone(), blocks.clone())], &mono_cfg);
        let faulted = monotasks_core::run_with_faults(
            &cluster, &[(job.clone(), blocks.clone())], &mono_cfg, &FaultPlan::new(),
        ).expect("empty plan must not fail");
        prop_assert_eq!(plain.makespan, faulted.makespan);
        prop_assert_eq!(plain.stats.events, faulted.stats.events);
        prop_assert_eq!(plain.records.len(), faulted.records.len());
        for (a, b) in plain.records.iter().zip(&faulted.records) {
            prop_assert_eq!(a.queued, b.queued);
            prop_assert_eq!(a.started, b.started);
            prop_assert_eq!(a.ended, b.ended);
            prop_assert_eq!(a.machine, b.machine);
        }
        prop_assert!(faulted.jobs[0].recovery.is_zero());

        let spark_cfg = SparkConfig::default();
        let plain = sparklike::run(&cluster, &[(job.clone(), blocks.clone())], &spark_cfg);
        let faulted = sparklike::run_with_faults(
            &cluster, &[(job, blocks)], &spark_cfg, &FaultPlan::new(),
        ).expect("empty plan must not fail");
        prop_assert_eq!(plain.makespan, faulted.makespan);
        prop_assert_eq!(plain.stats.events, faulted.stats.events);
        prop_assert_eq!(plain.tasks.len(), faulted.tasks.len());
        for (a, b) in plain.tasks.iter().zip(&faulted.tasks) {
            prop_assert_eq!(a.start, b.start);
            prop_assert_eq!(a.end, b.end);
            prop_assert_eq!(a.machine, b.machine);
        }
        prop_assert!(faulted.jobs[0].recovery.is_zero());
    }

    /// Same seed, same intensity ⇒ identical outcome on repeat, including
    /// identical errors for unrecoverable plans.
    #[test]
    fn seeded_plans_are_reproducible(
        rj in random_job(),
        seed in 0u64..1000,
        intensity in 0.0f64..2.5,
    ) {
        let (cluster, job, blocks) = rj.build();
        let tasks_per_stage = job.stages.iter().map(|s| s.tasks.len()).max().unwrap_or(1);
        let plan = sweep_plan(seed, &cluster, 60.0, job.stages.len(), tasks_per_stage, intensity);
        let again = sweep_plan(seed, &cluster, 60.0, job.stages.len(), tasks_per_stage, intensity);
        prop_assert_eq!(plan.events(), again.events());

        let mono_cfg = MonoConfig { collect_traces: false, ..MonoConfig::default() };
        let a = monotasks_core::run_with_faults(
            &cluster, &[(job.clone(), blocks.clone())], &mono_cfg, &plan,
        );
        let b = monotasks_core::run_with_faults(
            &cluster, &[(job.clone(), blocks.clone())], &mono_cfg, &plan,
        );
        match (&a, &b) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(x.makespan, y.makespan);
                prop_assert_eq!(x.stats.events, y.stats.events);
                prop_assert_eq!(x.stats.tasks_retried, y.stats.tasks_retried);
                prop_assert_eq!(x.stats.wasted_work_nanos, y.stats.wasted_work_nanos);
            }
            (Err(x), Err(y)) => prop_assert_eq!(x, y),
            _ => prop_assert!(false, "one run failed, the other did not"),
        }

        let spark_cfg = SparkConfig {
            speculation_multiplier: Some(1.5),
            ..SparkConfig::default()
        };
        let a = sparklike::run_with_faults(&cluster, &[(job.clone(), blocks.clone())], &spark_cfg, &plan);
        let b = sparklike::run_with_faults(&cluster, &[(job, blocks)], &spark_cfg, &plan);
        match (&a, &b) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(x.makespan, y.makespan);
                prop_assert_eq!(x.stats.events, y.stats.events);
                prop_assert_eq!(x.stats.tasks_retried, y.stats.tasks_retried);
                prop_assert_eq!(x.stats.tasks_speculated, y.stats.tasks_speculated);
            }
            (Err(x), Err(y)) => prop_assert_eq!(x, y),
            _ => prop_assert!(false, "one run failed, the other did not"),
        }
    }

    /// Both monotask-speculation knobs `None` ⇒ bit-identical makespans
    /// (`f64::to_bits`), records, and event counts to the default config,
    /// under random fault plans and topologies. `min_runtime` alone (no
    /// multiplier) must also be inert.
    #[test]
    fn disabled_mono_speculation_is_bit_identical(
        rj in random_job(),
        seed in 0u64..1000,
        intensity in 0.0f64..1.5,
        min_runtime_only in any::<bool>(),
    ) {
        let (cluster, job, blocks) = rj.build_replicated(2);
        let tasks_per_stage = job.stages.iter().map(|s| s.tasks.len()).max().unwrap_or(1);
        let plan = sweep_plan(seed, &cluster, 60.0, job.stages.len(), tasks_per_stage, intensity);

        let base_cfg = MonoConfig { collect_traces: false, ..MonoConfig::default() };
        prop_assert!(base_cfg.mono_speculation_multiplier.is_none());
        prop_assert!(base_cfg.mono_speculation_min_runtime.is_none());
        let off_cfg = MonoConfig {
            // The multiplier alone arms speculation; min_runtime without it
            // must leave every hook off the hot path.
            mono_speculation_min_runtime: if min_runtime_only { Some(3.0) } else { None },
            ..base_cfg.clone()
        };

        let base = monotasks_core::run_with_faults(
            &cluster, &[(job.clone(), blocks.clone())], &base_cfg, &plan,
        );
        let off = monotasks_core::run_with_faults(
            &cluster, &[(job, blocks)], &off_cfg, &plan,
        );
        match (&base, &off) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(
                    x.makespan.as_secs_f64().to_bits(),
                    y.makespan.as_secs_f64().to_bits()
                );
                prop_assert_eq!(x.stats.events, y.stats.events);
                prop_assert_eq!(x.stats.mono_copies, 0);
                prop_assert_eq!(y.stats.mono_copies, 0);
                prop_assert_eq!(x.records.len(), y.records.len());
                for (a, b) in x.records.iter().zip(&y.records) {
                    prop_assert_eq!(a.started, b.started);
                    prop_assert_eq!(a.ended, b.ended);
                    prop_assert_eq!(a.machine, b.machine);
                }
            }
            (Err(x), Err(y)) => prop_assert_eq!(x, y),
            _ => prop_assert!(false, "one run failed, the other did not"),
        }
    }

    /// Monotask speculation enabled ⇒ still fully deterministic: the same
    /// seeded straggler plan run twice agrees byte-for-byte on the
    /// serialized job reports and on every counter.
    #[test]
    fn enabled_mono_speculation_is_run_to_run_identical(
        rj in random_job(),
        seed in 0u64..1000,
        intensity in 0.5f64..2.5,
    ) {
        let (cluster, job, blocks) = rj.build_replicated(2);
        let tasks_per_stage = job.stages.iter().map(|s| s.tasks.len()).max().unwrap_or(1);
        let plan = workloads::straggler_plan(
            seed, &cluster, 60.0, job.stages.len(), tasks_per_stage, intensity,
        );

        let cfg = MonoConfig {
            collect_traces: false,
            mono_speculation_multiplier: Some(1.5),
            mono_speculation_min_runtime: Some(0.05),
            ..MonoConfig::default()
        };
        let run = || monotasks_core::run_with_faults(
            &cluster, &[(job.clone(), blocks.clone())], &cfg, &plan,
        ).expect("straggler-only plans are always recoverable");
        let a = run();
        let b = run();
        prop_assert_eq!(
            a.makespan.as_secs_f64().to_bits(),
            b.makespan.as_secs_f64().to_bits()
        );
        prop_assert_eq!(a.stats.events, b.stats.events);
        prop_assert_eq!(a.stats.mono_copies, b.stats.mono_copies);
        prop_assert_eq!(a.stats.mono_copy_wins, b.stats.mono_copy_wins);
        prop_assert_eq!(a.stats.wasted_bytes, b.stats.wasted_bytes);
        prop_assert_eq!(a.stats.wasted_work_nanos, b.stats.wasted_work_nanos);
        // Byte-identical reports and records (full Debug serialization
        // covers every field, including per-resource copy counters; only the
        // host wall-clock control buckets are normalized away).
        prop_assert_eq!(
            testsupport::jobs_debug_sans_host_time(&a.jobs),
            testsupport::jobs_debug_sans_host_time(&b.jobs)
        );
        prop_assert_eq!(format!("{:?}", a.records), format!("{:?}", b.records));
    }

    /// Zero-intensity partition plans are empty, and a plan whose partition
    /// window opens only after the job has finished leaves both executors
    /// bit-identical (`f64::to_bits`) to the plan-free run — the partition
    /// machinery arms but never fires.
    #[test]
    fn inert_partition_plan_is_bit_identical(rj in random_job(), seed in 0u64..1000) {
        let (cluster, job, blocks) = rj.build();
        prop_assert!(partition_plan(seed, &cluster, 60.0, 0.0).is_empty());

        let mono_cfg = MonoConfig { collect_traces: false, ..MonoConfig::default() };
        let plain = monotasks_core::run(&cluster, &[(job.clone(), blocks.clone())], &mono_cfg);
        // One seeded partition landing strictly after the makespan: the
        // executor runs with partition hooks armed but no cut ever applies.
        let after = plain.makespan.as_secs_f64() * 2.0 + 10.0;
        let late = FaultPlan::new().partition(
            vec![vec![0], (1..cluster.machines).collect()],
            SimTime::from_secs_f64(after),
            Some(SimTime::from_secs_f64(after + 5.0)),
        );
        prop_assert!(late.has_partitions());
        let armed = monotasks_core::run_with_faults(
            &cluster, &[(job.clone(), blocks.clone())], &mono_cfg, &late,
        ).expect("late partition must not fail");
        prop_assert_eq!(
            plain.makespan.as_secs_f64().to_bits(),
            armed.makespan.as_secs_f64().to_bits()
        );
        prop_assert_eq!(plain.stats.events, armed.stats.events);
        prop_assert!(armed.jobs[0].recovery.is_zero());

        let spark_cfg = SparkConfig::default();
        let plain = sparklike::run(&cluster, &[(job.clone(), blocks.clone())], &spark_cfg);
        let after = plain.makespan.as_secs_f64() * 2.0 + 10.0;
        let late = FaultPlan::new().partition(
            vec![vec![0], (1..cluster.machines).collect()],
            SimTime::from_secs_f64(after),
            Some(SimTime::from_secs_f64(after + 5.0)),
        );
        let armed = sparklike::run_with_faults(
            &cluster, &[(job, blocks)], &spark_cfg, &late,
        ).expect("late partition must not fail");
        prop_assert_eq!(
            plain.makespan.as_secs_f64().to_bits(),
            armed.makespan.as_secs_f64().to_bits()
        );
        prop_assert_eq!(plain.stats.events, armed.stats.events);
        prop_assert!(armed.jobs[0].recovery.is_zero());
    }

    /// Partition recovery is fully deterministic: the same seeded partition
    /// plan run twice through each executor agrees byte-for-byte on reports
    /// and counters — or fails both times with the identical structured
    /// error.
    #[test]
    fn partition_runs_are_run_to_run_identical(
        rj in random_job(),
        seed in 0u64..1000,
        intensity in 0.5f64..2.5,
    ) {
        let (cluster, job, blocks) = rj.build_replicated(2);
        let plan = partition_plan(seed, &cluster, 60.0, intensity);
        let again = partition_plan(seed, &cluster, 60.0, intensity);
        prop_assert_eq!(plan.events(), again.events());

        let mono_cfg = MonoConfig {
            collect_traces: false,
            fetch_timeout_secs: Some(2.0),
            ..MonoConfig::default()
        };
        let a = monotasks_core::run_with_faults(
            &cluster, &[(job.clone(), blocks.clone())], &mono_cfg, &plan,
        );
        let b = monotasks_core::run_with_faults(
            &cluster, &[(job.clone(), blocks.clone())], &mono_cfg, &plan,
        );
        match (&a, &b) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(
                    x.makespan.as_secs_f64().to_bits(),
                    y.makespan.as_secs_f64().to_bits()
                );
                prop_assert_eq!(x.stats.events, y.stats.events);
                prop_assert_eq!(x.stats.fetch_retries, y.stats.fetch_retries);
                prop_assert_eq!(x.stats.stalled_fetch_nanos, y.stats.stalled_fetch_nanos);
                prop_assert_eq!(x.stats.fetches_replanned, y.stats.fetches_replanned);
                prop_assert_eq!(
                    testsupport::jobs_debug_sans_host_time(&x.jobs),
                    testsupport::jobs_debug_sans_host_time(&y.jobs)
                );
                prop_assert_eq!(format!("{:?}", x.records), format!("{:?}", y.records));
            }
            (Err(x), Err(y)) => prop_assert_eq!(x, y),
            _ => prop_assert!(false, "one run failed, the other did not"),
        }

        let spark_cfg = SparkConfig {
            fetch_timeout_secs: Some(2.0),
            ..SparkConfig::default()
        };
        let a = sparklike::run_with_faults(&cluster, &[(job.clone(), blocks.clone())], &spark_cfg, &plan);
        let b = sparklike::run_with_faults(&cluster, &[(job, blocks)], &spark_cfg, &plan);
        match (&a, &b) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(
                    x.makespan.as_secs_f64().to_bits(),
                    y.makespan.as_secs_f64().to_bits()
                );
                prop_assert_eq!(x.stats.events, y.stats.events);
                prop_assert_eq!(x.stats.fetch_retries, y.stats.fetch_retries);
                prop_assert_eq!(x.stats.stalled_fetch_nanos, y.stats.stalled_fetch_nanos);
                prop_assert_eq!(x.stats.fetches_replanned, y.stats.fetches_replanned);
                prop_assert_eq!(
                    testsupport::jobs_debug_sans_host_time(&x.jobs),
                    testsupport::jobs_debug_sans_host_time(&y.jobs)
                );
                prop_assert_eq!(format!("{:?}", x.tasks), format!("{:?}", y.tasks));
            }
            (Err(x), Err(y)) => prop_assert_eq!(x, y),
            _ => prop_assert!(false, "one run failed, the other did not"),
        }
    }
}
