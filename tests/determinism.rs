//! Determinism: identical inputs must produce bit-identical simulations.
//!
//! The whole reproduction rests on this — figures must regenerate exactly,
//! and A/B comparisons must not be noise.

mod testsupport;

use workloads::{bdb_job, sort_job, BdbQuery, SortConfig};

#[test]
fn monotasks_runs_are_bit_identical() {
    let cluster = testsupport::cluster(4);
    let (job, blocks) = testsupport::sort4();
    let run = || {
        monotasks_core::run(
            &cluster,
            &[(job.clone(), blocks.clone())],
            &monotasks_core::MonoConfig::default(),
        )
    };
    let (a, b) = (run(), run());
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.records.len(), b.records.len());
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.multitask, rb.multitask);
        assert_eq!(ra.started, rb.started);
        assert_eq!(ra.ended, rb.ended);
        assert_eq!(ra.machine, rb.machine);
    }
}

#[test]
fn spark_runs_are_bit_identical() {
    let cluster = testsupport::cluster(4);
    let (job, blocks) = bdb_job(BdbQuery::Q2a, 4, 2);
    let run = || {
        sparklike::run(
            &cluster,
            &[(job.clone(), blocks.clone())],
            &sparklike::SparkConfig::default(),
        )
    };
    let (a, b) = (run(), run());
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.tasks.len(), b.tasks.len());
    for (ta, tb) in a.tasks.iter().zip(&b.tasks) {
        assert_eq!((ta.job, ta.stage, ta.task), (tb.job, tb.stage, tb.task));
        assert_eq!(ta.start, tb.start);
        assert_eq!(ta.end, tb.end);
    }
}

#[test]
fn concurrent_job_runs_are_bit_identical() {
    let cluster = testsupport::cluster(4);
    let (a_job, a_blocks) = sort_job(&SortConfig::new(2.0, 10, 4, 2));
    let (b_job, b_blocks) = sort_job(&SortConfig::new(2.0, 50, 4, 2));
    let run = || {
        monotasks_core::run(
            &cluster,
            &[
                (a_job.clone(), a_blocks.clone()),
                (b_job.clone(), b_blocks.clone()),
            ],
            &monotasks_core::MonoConfig::default(),
        )
    };
    let (x, y) = (run(), run());
    assert_eq!(x.makespan, y.makespan);
    assert_eq!(
        x.jobs.iter().map(|j| j.end).collect::<Vec<_>>(),
        y.jobs.iter().map(|j| j.end).collect::<Vec<_>>()
    );
}

#[test]
fn job_submission_order_is_respected_in_ids() {
    let cluster = testsupport::cluster(2);
    let (a_job, a_blocks) = sort_job(&SortConfig::new(1.0, 10, 2, 2));
    let (b_job, b_blocks) = sort_job(&SortConfig::new(1.0, 50, 2, 2));
    let out = monotasks_core::run(
        &cluster,
        &[(a_job, a_blocks), (b_job, b_blocks)],
        &monotasks_core::MonoConfig::default(),
    );
    assert_eq!(out.jobs[0].job, dataflow::JobId(0));
    assert_eq!(out.jobs[1].job, dataflow::JobId(1));
}
