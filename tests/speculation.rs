//! Monotask-level speculation, end to end: a straggling monotask is
//! re-dispatched against an alternate resource — a slow disk read against a
//! replica, a slow shuffle serve against another sender disk, a slow compute
//! duplicated — with first-finisher-wins and deterministic loser
//! cancellation, and strictly less wasted work than slot-level (whole-task)
//! speculation on the same plan.

mod testsupport;

use cluster::FaultPlan;
use dataflow::{BlockMap, RES_CPU, RES_DISK, RES_NET};
use monotasks_core::MonoConfig;
use simcore::SimTime;
use sparklike::SparkConfig;
use testsupport::sort4;

fn cluster() -> cluster::ClusterSpec {
    testsupport::cluster(4)
}

fn spec_cfg() -> MonoConfig {
    MonoConfig {
        mono_speculation_multiplier: Some(1.5),
        mono_speculation_min_runtime: Some(0.05),
        ..MonoConfig::default()
    }
}

/// Input blocks with an HDFS replication factor of 2, shaped like the sort
/// job's plain placement.
fn replicate(blocks: &BlockMap) -> BlockMap {
    BlockMap::round_robin_replicated(
        blocks.blocks(),
        blocks.machines(),
        blocks.disks_per_machine(),
        2,
    )
}

/// A badly degraded disk drags its input reads past the straggler threshold;
/// with replicated blocks the executor re-issues *only the read* against a
/// replica site, and the copy's win shortens the job.
#[test]
fn disk_straggler_is_beaten_by_a_replica_read() {
    let (job, blocks) = sort4();
    let blocks = replicate(&blocks);
    // Map-stage reads on machine 0 disk 0 run at 5% speed for the whole run.
    let plan =
        FaultPlan::new().degrade_disk(0, 0, 0.05, SimTime::ZERO, SimTime::from_secs(100_000));
    let nospec = monotasks_core::run_with_faults(
        &cluster(),
        &[(job.clone(), blocks.clone())],
        &MonoConfig::default(),
        &plan,
    )
    .expect("degraded run without speculation");
    let spec = monotasks_core::run_with_faults(&cluster(), &[(job, blocks)], &spec_cfg(), &plan)
        .expect("degraded run with speculation");
    let rec = &spec.jobs[0].recovery;
    assert!(
        rec.mono_copy_wins[RES_DISK] >= 1,
        "no disk-read copy won: {rec:?}"
    );
    assert!(
        spec.makespan < nospec.makespan,
        "speculation did not shorten the degraded run: {:?} vs {:?}",
        spec.makespan,
        nospec.makespan
    );
    // Only the straggling monotask was re-dispatched — no whole-task retries.
    assert_eq!(rec.tasks_retried, 0, "{rec:?}");
}

/// A serve disk degraded during the shuffle drags network fetches; the
/// executor re-requests the share via the sender's other disk and the
/// re-fetch wins.
#[test]
fn network_straggler_is_beaten_by_a_replica_fetch() {
    let (job, blocks) = sort4();
    let free = monotasks_core::try_run(
        &cluster(),
        &[(job.clone(), blocks.clone())],
        &MonoConfig::default(),
    )
    .expect("fault-free run");
    // Degrade one serve disk from mid-run (the shuffle window) onward, so
    // the map stage is untouched and the drag lands on shuffle serve reads.
    let plan = FaultPlan::new().degrade_disk(
        1,
        1,
        0.04,
        SimTime::from_secs_f64(free.makespan.as_secs_f64() * 0.45),
        SimTime::from_secs(100_000),
    );
    let nospec = monotasks_core::run_with_faults(
        &cluster(),
        &[(job.clone(), blocks.clone())],
        &MonoConfig::default(),
        &plan,
    )
    .expect("degraded run without speculation");
    let spec = monotasks_core::run_with_faults(&cluster(), &[(job, blocks)], &spec_cfg(), &plan)
        .expect("degraded run with speculation");
    let rec = &spec.jobs[0].recovery;
    assert!(
        rec.mono_copy_wins[RES_NET] >= 1,
        "no network-fetch copy won: {rec:?}"
    );
    assert!(
        spec.makespan < nospec.makespan,
        "speculation did not shorten the degraded run: {:?} vs {:?}",
        spec.makespan,
        nospec.makespan
    );
}

/// Loser cancellation returns every queue slot and port: a run riddled with
/// speculation races completes, repeats bit-identically, and its waste
/// accounting stays consistent (wins never exceed copies; waste only exists
/// where races actually ran).
#[test]
fn loser_cancellation_returns_capacity_and_stays_deterministic() {
    let (job, blocks) = sort4();
    let blocks = replicate(&blocks);
    let plan = workloads::straggler_plan(11, &cluster(), 60.0, 2, 10, 2.0);
    assert!(!plan.is_empty());
    let run = || {
        monotasks_core::run_with_faults(
            &cluster(),
            &[(job.clone(), blocks.clone())],
            &spec_cfg(),
            &plan,
        )
        .expect("straggler-only plan must complete — a leaked slot deadlocks")
    };
    let a = run();
    let b = run();
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.stats.events, b.stats.events);
    assert_eq!(
        testsupport::jobs_debug_sans_host_time(&a.jobs),
        testsupport::jobs_debug_sans_host_time(&b.jobs)
    );
    let rec = &a.jobs[0].recovery;
    assert!(
        rec.mono_copies_total() >= 1,
        "plan produced no speculation: {rec:?}"
    );
    assert!(
        rec.mono_copy_wins_total() <= rec.mono_copies_total(),
        "{rec:?}"
    );
    // Every resolved race charged one loser: waste time moves when any race
    // resolved, and CPU-only losers never charge bytes.
    if rec.mono_copy_wins_total() >= 1 {
        assert!(rec.wasted_work_seconds > 0.0, "{rec:?}");
    }
    assert!(rec.wasted_bytes >= 0.0, "{rec:?}");
    assert_eq!(rec.tasks_retried, 0, "stragglers must not retry: {rec:?}");
}

/// On the same CPU-straggler plan, monotask-level speculation duplicates
/// *only the compute monotask* — wasting zero I/O bytes — while slot-level
/// speculation re-runs the whole task and discards a full set of reads.
/// Both must still beat their own no-speculation baselines.
#[test]
fn monotask_speculation_wastes_less_than_slot_level() {
    let (job, blocks) = sort4();
    let plan = FaultPlan::new().straggle(0, 3, 8.0).straggle(1, 2, 8.0);
    // A 3.0 threshold (both engines, for a fair comparison) clears ordinary
    // serve-queue contention but still trips on the 8x stragglers, so the
    // only races are over the straggling compute monotasks.
    let cfg = MonoConfig {
        mono_speculation_multiplier: Some(3.0),
        mono_speculation_min_runtime: Some(0.05),
        ..MonoConfig::default()
    };

    let mono_spec =
        monotasks_core::run_with_faults(&cluster(), &[(job.clone(), blocks.clone())], &cfg, &plan)
            .expect("mono speculative run");
    let mono_nospec = monotasks_core::run_with_faults(
        &cluster(),
        &[(job.clone(), blocks.clone())],
        &MonoConfig::default(),
        &plan,
    )
    .expect("mono baseline run");
    let rec = &mono_spec.jobs[0].recovery;
    assert!(
        rec.mono_copy_wins[RES_CPU] >= 1,
        "no compute copy won: {rec:?}"
    );
    assert!(
        mono_spec.makespan < mono_nospec.makespan,
        "mono speculation did not help: {:?} vs {:?}",
        mono_spec.makespan,
        mono_nospec.makespan
    );
    // The straggling resource was CPU: its duplicate moves no bytes.
    assert_eq!(
        rec.wasted_bytes, 0.0,
        "compute-only speculation wasted I/O: {rec:?}"
    );

    let slot_cfg = SparkConfig {
        speculation_multiplier: Some(3.0),
        ..SparkConfig::default()
    };
    let slot = sparklike::run_with_faults(&cluster(), &[(job, blocks)], &slot_cfg, &plan)
        .expect("slot-level speculative run");
    let slot_rec = &slot.jobs[0].recovery;
    assert!(slot_rec.tasks_speculated >= 1, "{slot_rec:?}");
    assert!(
        slot_rec.wasted_bytes > 0.0,
        "slot-level speculation should discard a whole task's I/O: {slot_rec:?}"
    );
    assert!(
        rec.wasted_bytes < slot_rec.wasted_bytes,
        "monotask speculation must waste fewer bytes: {} vs {}",
        rec.wasted_bytes,
        slot_rec.wasted_bytes
    );
}
