//! Network partitions and partition-aware recovery, end to end: a healing
//! mid-shuffle partition ridden out by fetch timeout/retry/backoff, a
//! permanent partition re-planned around via sender quarantine and lineage
//! resubmission, and the fail-fast paths — a structured
//! [`RunError::Unreachable`] instead of a hang when retries are exhausted
//! with no reachable replica, or when no timeout is armed at all.

mod testsupport;

use cluster::{ClusterSpec, FaultPlan};
use dataflow::RunError;
use monotasks_core::MonoConfig;
use simcore::SimTime;
use sparklike::SparkConfig;
use testsupport::sort4 as sort;

fn cluster() -> ClusterSpec {
    testsupport::cluster(4)
}

/// A partition isolating one machine for a window [lo, hi]·makespan.
fn isolate(machine: usize, makespan_s: f64, lo: f64, hi: f64) -> FaultPlan {
    let others: Vec<usize> = (0..4).filter(|&m| m != machine).collect();
    FaultPlan::new().partition(
        vec![vec![machine], others],
        SimTime::from_secs_f64(makespan_s * lo),
        Some(SimTime::from_secs_f64(makespan_s * hi)),
    )
}

/// A partition isolating one machine forever (never heals).
fn isolate_forever(machine: usize, at_secs: f64) -> FaultPlan {
    let others: Vec<usize> = (0..4).filter(|&m| m != machine).collect();
    FaultPlan::new().partition(
        vec![vec![machine], others],
        SimTime::from_secs_f64(at_secs),
        None,
    )
}

/// A mid-shuffle partition that heals: with fetch timeouts armed, both
/// executors stall, back off, and resume the parked fetches on heal —
/// completing within 1.5× of the fault-free makespan and without any
/// `RunError`.
#[test]
fn both_executors_ride_out_a_healing_mid_shuffle_partition() {
    let (job, blocks) = sort();

    let mono_cfg = MonoConfig {
        fetch_timeout_secs: Some(2.0),
        ..MonoConfig::default()
    };
    let free = monotasks_core::try_run(&cluster(), &[(job.clone(), blocks.clone())], &mono_cfg)
        .expect("fault-free run");
    let free_s = free.makespan.as_secs_f64();
    let plan = isolate(1, free_s, 0.45, 0.70);
    let out = monotasks_core::run_with_faults(
        &cluster(),
        &[(job.clone(), blocks.clone())],
        &mono_cfg,
        &plan,
    )
    .expect("monotasks run must ride out a healing partition");
    assert!(out.makespan > free.makespan, "partition had no effect");
    assert!(
        out.makespan.as_secs_f64() <= free_s * 1.5,
        "recovery too slow: {:.1}s vs fault-free {free_s:.1}s",
        out.makespan.as_secs_f64()
    );
    let rec = &out.jobs[0].recovery;
    assert!(
        rec.fetch_retries > 0 || rec.stalled_fetch_seconds > 0.0,
        "no partition recovery recorded: {rec:?}"
    );

    let spark_cfg = SparkConfig {
        fetch_timeout_secs: Some(2.0),
        ..SparkConfig::default()
    };
    let free = sparklike::try_run(&cluster(), &[(job.clone(), blocks.clone())], &spark_cfg)
        .expect("fault-free run");
    let free_s = free.makespan.as_secs_f64();
    let plan = isolate(1, free_s, 0.45, 0.70);
    let out = sparklike::run_with_faults(&cluster(), &[(job, blocks)], &spark_cfg, &plan)
        .expect("spark-like run must ride out a healing partition");
    assert!(out.makespan > free.makespan, "partition had no effect");
    assert!(
        out.makespan.as_secs_f64() <= free_s * 1.5,
        "recovery too slow: {:.1}s vs fault-free {free_s:.1}s",
        out.makespan.as_secs_f64()
    );
    let rec = &out.jobs[0].recovery;
    assert!(
        rec.fetch_retries > 0 || rec.stalled_fetch_seconds > 0.0,
        "no partition recovery recorded: {rec:?}"
    );
}

/// A permanent partition with fetch timeouts armed: the spark-like executor
/// exhausts the retries, quarantines the unreachable sender, resubmits its
/// lost map outputs via lineage on the majority side, and completes — every
/// logical task covered, with the re-planning visible in the recovery
/// counters.
#[test]
fn sparklike_replans_around_a_permanent_partition() {
    let (job, blocks) = sort();
    let total_tasks: usize = job.stages.iter().map(|s| s.tasks.len()).sum();
    let cfg = SparkConfig {
        fetch_timeout_secs: Some(1.0),
        ..SparkConfig::default()
    };
    let free = sparklike::try_run(&cluster(), &[(job.clone(), blocks.clone())], &cfg)
        .expect("fault-free run");
    let plan = isolate_forever(1, free.makespan.as_secs_f64() * 0.5);
    let out = sparklike::run_with_faults(&cluster(), &[(job, blocks)], &cfg, &plan)
        .expect("spark-like run must re-plan around a permanent partition");
    let rec = &out.jobs[0].recovery;
    assert!(rec.fetch_retries > 0, "no fetch retries: {rec:?}");
    assert!(rec.fetches_replanned > 0, "no re-planned fetches: {rec:?}");
    assert!(
        rec.recompute_seconds > 0.0,
        "no lineage resubmission: {rec:?}"
    );
    let seen: std::collections::HashSet<_> = out.tasks.iter().map(|t| (t.stage, t.task)).collect();
    assert_eq!(seen.len(), total_tasks);
    // Nothing runs on the quarantined side of the cut after recovery: every
    // post-partition attempt lands on the majority group.
    let cut_at = SimTime::from_secs_f64(free.makespan.as_secs_f64() * 0.5);
    let latest_on_isolated = out
        .tasks
        .iter()
        .filter(|t| t.machine == 1)
        .map(|t| t.start)
        .max();
    if let Some(started) = latest_on_isolated {
        assert!(
            started <= out.makespan && out.makespan > cut_at,
            "sanity: records exist around the cut"
        );
    }
}

/// A permanent partition with *no* replica to re-plan against (replication 1,
/// the isolated machine holds block homes the majority side cannot reach):
/// the monotasks executor must fail fast with the structured
/// [`RunError::Unreachable`] naming the unreachable machine — not hang and
/// not burn the step budget.
#[test]
fn mono_fails_fast_when_no_replica_is_reachable() {
    let (job, blocks) = sort();
    let cfg = MonoConfig {
        fetch_timeout_secs: Some(1.0),
        ..MonoConfig::default()
    };
    let free = monotasks_core::try_run(&cluster(), &[(job.clone(), blocks.clone())], &cfg)
        .expect("fault-free run");
    let plan = isolate_forever(1, free.makespan.as_secs_f64() * 0.5);
    let out = monotasks_core::run_with_faults(&cluster(), &[(job, blocks)], &cfg, &plan);
    match out {
        Err(RunError::Unreachable { machine, .. }) => {
            assert_eq!(machine, 1, "wrong machine blamed");
        }
        other => panic!("expected Unreachable, got {other:?}"),
    }
}

/// With no fetch timeout armed (the default), a permanent partition cannot
/// hang the simulation: when every runnable attempt is parked behind a cut
/// link, the starvation check surfaces a structured
/// [`RunError::Unreachable`] in both executors.
#[test]
fn permanent_partition_without_timeout_is_a_clean_error_not_a_hang() {
    let (job, blocks) = sort();

    let mono_cfg = MonoConfig::default();
    assert!(mono_cfg.fetch_timeout_secs.is_none());
    let free = monotasks_core::try_run(&cluster(), &[(job.clone(), blocks.clone())], &mono_cfg)
        .expect("fault-free run");
    let plan = isolate_forever(1, free.makespan.as_secs_f64() * 0.5);
    let out = monotasks_core::run_with_faults(
        &cluster(),
        &[(job.clone(), blocks.clone())],
        &mono_cfg,
        &plan,
    );
    assert!(
        matches!(out, Err(RunError::Unreachable { .. })),
        "expected Unreachable, got {out:?}"
    );

    let spark_cfg = SparkConfig::default();
    assert!(spark_cfg.fetch_timeout_secs.is_none());
    let free = sparklike::try_run(&cluster(), &[(job.clone(), blocks.clone())], &spark_cfg)
        .expect("fault-free run");
    let plan = isolate_forever(1, free.makespan.as_secs_f64() * 0.5);
    let out = sparklike::run_with_faults(&cluster(), &[(job, blocks)], &spark_cfg, &plan);
    assert!(
        matches!(out, Err(RunError::Unreachable { .. })),
        "expected Unreachable, got {out:?}"
    );
}

/// A link cut that heals before any shuffle fetch uses the pair is a no-op
/// in the spark-like executor: the makespan is bit-identical to the
/// plan-free run even though the partition machinery was armed.
#[test]
fn heal_before_first_fetch_is_a_noop() {
    let (job, blocks) = sort();
    let cfg = SparkConfig::default();
    let free = sparklike::try_run(&cluster(), &[(job.clone(), blocks.clone())], &cfg)
        .expect("fault-free run");
    // Map tasks read local disk for seconds before the first shuffle byte
    // moves; a 1 ms cut at t=0 heals long before any fetch touches it.
    let plan = FaultPlan::new().cut_link(0, 1, SimTime::ZERO, Some(SimTime::from_secs_f64(1e-3)));
    assert!(plan.has_partitions());
    let out = sparklike::run_with_faults(&cluster(), &[(job, blocks)], &cfg, &plan)
        .expect("healed cut must not fail the run");
    assert_eq!(
        free.makespan.as_secs_f64().to_bits(),
        out.makespan.as_secs_f64().to_bits(),
        "healed-before-use cut changed the makespan"
    );
    assert!(out.jobs[0].recovery.is_zero());
}

/// Overlapping partition windows on the same pair are rejected up front with
/// `InvalidConfig`, mirroring the degrade-window overlap rule.
#[test]
fn overlapping_partition_windows_are_rejected() {
    let (job, blocks) = sort();
    let plan = FaultPlan::new()
        .cut_link(0, 1, SimTime::from_secs(1), Some(SimTime::from_secs(10)))
        .cut_link(0, 1, SimTime::from_secs(5), Some(SimTime::from_secs(15)));
    let mono = monotasks_core::run_with_faults(
        &cluster(),
        &[(job.clone(), blocks.clone())],
        &MonoConfig::default(),
        &plan,
    );
    assert!(
        matches!(mono, Err(RunError::InvalidConfig(_))),
        "expected InvalidConfig, got {mono:?}"
    );
    let spark =
        sparklike::run_with_faults(&cluster(), &[(job, blocks)], &SparkConfig::default(), &plan);
    assert!(
        matches!(spark, Err(RunError::InvalidConfig(_))),
        "expected InvalidConfig, got {spark:?}"
    );
}
