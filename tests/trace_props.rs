//! Property tests for the trace layer.
//!
//! Contracts: (1) arming `trace_path` is observation-only — both executors
//! stay bit-identical to the trace-off run under random workloads × fault
//! plans; (2) trace conservation — spans on one track never overlap
//! (positive measure), per-resource span byte totals equal the sums over the
//! run's monotask records, and every recovery counter has exactly as many
//! matching instant events as its count.

mod testsupport;

use std::collections::BTreeMap;

use cluster::InstantKind;
use monotasks_core::MonoConfig;
use mt_trace::chrome::Event;
use proptest::prelude::*;
use simcore::ResourceKind;
use sparklike::SparkConfig;
use testsupport::{jobs_debug_sans_host_time, random_job};
use workloads::sweep_plan;

fn traced(cfg: MonoConfig) -> MonoConfig {
    MonoConfig {
        trace_path: Some(std::path::PathBuf::from("unused.json")),
        ..cfg
    }
}

/// Spans grouped by `(pid, tid)` never overlap with positive measure.
fn assert_lanes_disjoint(doc: &mt_trace::TraceDoc) -> Result<(), TestCaseError> {
    let mut tracks: BTreeMap<(u64, u64), Vec<(u64, u64)>> = BTreeMap::new();
    for e in &doc.events {
        if let Event::Span {
            pid,
            tid,
            ts_ns,
            dur_ns,
            ..
        } = e
        {
            tracks
                .entry((*pid, *tid))
                .or_default()
                .push((*ts_ns, *ts_ns + *dur_ns));
        }
    }
    for ((pid, tid), mut spans) in tracks {
        spans.sort();
        for w in spans.windows(2) {
            prop_assert!(
                w[1].0 >= w[0].1,
                "overlapping spans on track ({pid}, {tid}): {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// `trace_path: None` vs `Some` — bit-identical schedules, both
    /// executors, under random workloads and fault plans.
    #[test]
    fn arming_the_trace_is_observation_only(
        rj in random_job(),
        seed in 0u64..1000,
        intensity in 0.0f64..1.5,
    ) {
        let (cluster, job, blocks) = rj.build();
        let tasks_per_stage = job.stages.iter().map(|s| s.tasks.len()).max().unwrap_or(1);
        let plan = sweep_plan(seed, &cluster, 60.0, job.stages.len(), tasks_per_stage, intensity);

        let off = monotasks_core::run_with_faults(
            &cluster, &[(job.clone(), blocks.clone())], &MonoConfig::default(), &plan,
        );
        let on = monotasks_core::run_with_faults(
            &cluster, &[(job.clone(), blocks.clone())], &traced(MonoConfig::default()), &plan,
        );
        match (off, on) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(
                    a.makespan.as_secs_f64().to_bits(),
                    b.makespan.as_secs_f64().to_bits()
                );
                prop_assert_eq!(
                    jobs_debug_sans_host_time(&a.jobs),
                    jobs_debug_sans_host_time(&b.jobs)
                );
                prop_assert_eq!(a.records.len(), b.records.len());
                prop_assert!(a.instants.is_empty(), "trace-off run must collect nothing");
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(
                false,
                "trace arming changed the outcome: off={:?} on={:?}",
                a.is_ok(),
                b.is_ok()
            ),
        }

        let off = sparklike::run_with_faults(
            &cluster, &[(job.clone(), blocks.clone())], &SparkConfig::default(), &plan,
        );
        let on = sparklike::run_with_faults(
            &cluster,
            &[(job, blocks)],
            &SparkConfig {
                trace_path: Some(std::path::PathBuf::from("unused.json")),
                ..SparkConfig::default()
            },
            &plan,
        );
        match (off, on) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(
                    a.makespan.as_secs_f64().to_bits(),
                    b.makespan.as_secs_f64().to_bits()
                );
                prop_assert_eq!(
                    jobs_debug_sans_host_time(&a.jobs),
                    jobs_debug_sans_host_time(&b.jobs)
                );
                prop_assert!(a.instants.is_empty(), "trace-off run must collect nothing");
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(
                false,
                "trace arming changed the outcome: off={:?} on={:?}",
                a.is_ok(),
                b.is_ok()
            ),
        }
    }

    /// Trace conservation on the mono executor: disjoint lanes, byte totals
    /// equal to the records', instant counts equal to recovery counters.
    #[test]
    fn mono_trace_conserves_run_quantities(
        rj in random_job(),
        seed in 0u64..1000,
        intensity in 0.0f64..1.5,
    ) {
        let (cluster, job, blocks) = rj.build();
        let tasks_per_stage = job.stages.iter().map(|s| s.tasks.len()).max().unwrap_or(1);
        let plan = sweep_plan(seed, &cluster, 60.0, job.stages.len(), tasks_per_stage, intensity);
        let out = match monotasks_core::run_with_faults(
            &cluster, &[(job, blocks)], &traced(MonoConfig::default()), &plan,
        ) {
            Ok(out) => out,
            // Unrecoverable plans are fault_props' concern, not the trace's.
            Err(_) => return Ok(()),
        };
        let doc = mt_trace::mono_doc(&out);
        assert_lanes_disjoint(&doc)?;

        // Span byte totals equal the monotask records' byte sums per class.
        let summary = mt_trace::TraceSummary::of(&doc);
        let mut expected = [0.0f64; 3];
        for r in &out.records {
            let idx = match r.resource {
                ResourceKind::Cpu => dataflow::RES_CPU,
                ResourceKind::Disk => dataflow::RES_DISK,
                ResourceKind::Network => dataflow::RES_NET,
            };
            expected[idx] += r.bytes;
        }
        for (i, &want) in expected.iter().enumerate() {
            let diff = (summary.bytes_by_resource[i] - want).abs();
            prop_assert!(
                diff <= 1e-6 * want.max(1.0),
                "resource {i} bytes drifted: trace {} vs records {}",
                summary.bytes_by_resource[i],
                want
            );
        }

        // Every recovery counter has a matching instant count.
        let count = |f: fn(&InstantKind) -> bool| {
            out.instants.iter().filter(|i| f(&i.kind)).count() as u64
        };
        let recovery: Vec<_> = out.jobs.iter().map(|j| j.recovery).collect();
        let sum = |f: fn(&dataflow::RecoveryStats) -> u64| recovery.iter().map(f).sum::<u64>();
        prop_assert_eq!(
            count(|k| matches!(k, InstantKind::TaskRetry { .. })),
            sum(|r| r.tasks_retried)
        );
        prop_assert_eq!(
            count(|k| matches!(k, InstantKind::MonoCopy { .. })),
            sum(|r| r.mono_copies.iter().sum())
        );
        prop_assert_eq!(
            count(|k| matches!(k, InstantKind::MonoCopyWin { .. })),
            sum(|r| r.mono_copy_wins.iter().sum())
        );
        prop_assert_eq!(
            count(|k| matches!(k, InstantKind::FetchRetry { .. })),
            sum(|r| r.fetch_retries)
        );
        prop_assert_eq!(
            count(|k| matches!(k, InstantKind::FetchReplan { .. })),
            sum(|r| r.fetches_replanned)
        );
        let invalidations: u64 = out
            .jobs
            .iter()
            .flat_map(|j| j.stages.iter())
            .map(|s| s.control.template_invalidations)
            .sum();
        prop_assert_eq!(
            count(|k| matches!(k, InstantKind::TemplateInvalidate { .. })),
            invalidations
        );
        // Fault instants are machine-anchored and never post-makespan.
        for inst in &out.instants {
            prop_assert!(inst.time <= out.makespan || inst.kind.job().is_some());
        }
    }

    /// Spark conservation: disjoint lanes and counter↔instant equality for
    /// the counters the baseline executor owns.
    #[test]
    fn spark_trace_conserves_run_quantities(
        rj in random_job(),
        seed in 0u64..1000,
        intensity in 0.0f64..1.5,
    ) {
        let (cluster, job, blocks) = rj.build();
        let tasks_per_stage = job.stages.iter().map(|s| s.tasks.len()).max().unwrap_or(1);
        let plan = sweep_plan(seed, &cluster, 60.0, job.stages.len(), tasks_per_stage, intensity);
        let cfg = SparkConfig {
            trace_path: Some(std::path::PathBuf::from("unused.json")),
            // Arm speculation so TaskSpeculate instants occur on straggly
            // plans.
            speculation_multiplier: Some(1.5),
            ..SparkConfig::default()
        };
        let out = match sparklike::run_with_faults(&cluster, &[(job, blocks)], &cfg, &plan) {
            Ok(out) => out,
            Err(_) => return Ok(()),
        };
        let doc = mt_trace::spark_doc(&out);
        assert_lanes_disjoint(&doc)?;

        let count = |f: fn(&InstantKind) -> bool| {
            out.instants.iter().filter(|i| f(&i.kind)).count() as u64
        };
        let recovery: Vec<_> = out.jobs.iter().map(|j| j.recovery).collect();
        let sum = |f: fn(&dataflow::RecoveryStats) -> u64| recovery.iter().map(f).sum::<u64>();
        prop_assert_eq!(
            count(|k| matches!(k, InstantKind::TaskRetry { .. })),
            sum(|r| r.tasks_retried)
        );
        prop_assert_eq!(
            count(|k| matches!(k, InstantKind::TaskSpeculate { .. })),
            sum(|r| r.tasks_speculated)
        );
        prop_assert_eq!(
            count(|k| matches!(k, InstantKind::FetchRetry { .. })),
            sum(|r| r.fetch_retries)
        );
        prop_assert_eq!(
            count(|k| matches!(k, InstantKind::FetchReplan { .. })),
            sum(|r| r.fetches_replanned)
        );
    }
}
