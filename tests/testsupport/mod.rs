//! Helpers shared across the integration-test suite (`tests/*.rs`).
//!
//! Each test binary compiles this module independently (`mod testsupport;`),
//! so not every binary uses every helper.
#![allow(dead_code)]

use cluster::{ClusterSpec, MachineSpec};
use dataflow::{BlockMap, CostModel, JobBuilder, JobReport, JobSpec};
use proptest::prelude::*;
use workloads::{sort_job, SortConfig};

pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Debug-serializes job reports with the host wall-clock control buckets
/// zeroed. Every simulated quantity and counter is deterministic and stays in
/// the comparison; `template_build_nanos`/`instantiate_nanos` are measured on
/// the host and legitimately vary run to run.
pub fn jobs_debug_sans_host_time(jobs: &[JobReport]) -> String {
    let mut jobs = jobs.to_vec();
    for j in &mut jobs {
        for s in &mut j.stages {
            s.control.template_build_nanos = 0;
            s.control.instantiate_nanos = 0;
        }
    }
    format!("{jobs:?}")
}

/// The suite's reference cluster: `machines` × m2.4xlarge.
pub fn cluster(machines: usize) -> ClusterSpec {
    ClusterSpec::new(machines, MachineSpec::m2_4xlarge())
}

/// The suite's reference workload: a 4 GiB, 10-task-per-stage disk sort on
/// four machines with two disks each.
pub fn sort4() -> (JobSpec, BlockMap) {
    sort_job(&SortConfig::new(4.0, 10, 4, 2))
}

/// A small randomly-shaped job for property tests: map over a disk file,
/// optionally shuffled into a reduce, on a cluster sized to match.
#[derive(Clone, Debug)]
pub struct RandomJob {
    pub machines: usize,
    pub total_gib: f64,
    pub map_tasks: usize,
    pub reduce_tasks: Option<usize>,
    pub in_memory_shuffle: bool,
}

impl RandomJob {
    pub fn build(&self) -> (ClusterSpec, JobSpec, BlockMap) {
        let total = self.total_gib * GIB;
        let mut b = JobBuilder::new("prop", CostModel::spark_1_3()).read_disk(
            total,
            total / 64.0,
            total / self.map_tasks as f64,
        );
        b = b.map(1.0, 1.0, true);
        let job = match self.reduce_tasks {
            Some(r) => b
                .shuffle(r, self.in_memory_shuffle)
                .map(1.0, 1.0, true)
                .write_disk(1.0),
            None => b.write_disk(1.0),
        };
        let cluster = cluster(self.machines);
        let blocks =
            BlockMap::round_robin(JobBuilder::blocks_allocated(&job).max(1), self.machines, 2);
        (cluster, job, blocks)
    }

    /// Like [`RandomJob::build`] but with HDFS-style input replication, so
    /// disk-read monotasks have replica sites to speculate against.
    pub fn build_replicated(&self, replication: usize) -> (ClusterSpec, JobSpec, BlockMap) {
        let (cluster, job, blocks) = self.build();
        let blocks = BlockMap::round_robin_replicated(
            blocks.blocks(),
            blocks.machines(),
            blocks.disks_per_machine(),
            replication,
        );
        (cluster, job, blocks)
    }
}

pub fn random_job() -> impl Strategy<Value = RandomJob> {
    (
        2usize..=4,
        0.25f64..=2.0,
        1usize..=16,
        prop_oneof![Just(None), (1usize..=12).prop_map(Some)],
        any::<bool>(),
    )
        .prop_map(
            |(machines, total_gib, map_tasks, reduce_tasks, ims)| RandomJob {
                machines,
                total_gib,
                map_tasks,
                reduce_tasks,
                in_memory_shuffle: ims,
            },
        )
}
