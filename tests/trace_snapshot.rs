//! Golden-trace snapshots: the trace layer's output is part of the
//! determinism contract.
//!
//! A small rack-clustered sort with a deterministic fault plan is traced and
//! serialized; the bytes must match the committed reference exactly, for
//! every fabric shard count (the hierarchical fabric's sharding is
//! unobservable in results — PR 9's invariant now extends to traces), and
//! re-emission within one process must be byte-stable.
//!
//! To bless a new reference after an intentional behavior change:
//! `UPDATE_GOLDEN=1 cargo test --test trace_snapshot`.

mod testsupport;

use cluster::{ClusterSpec, FaultPlan, MachineSpec};
use monotasks_core::MonoConfig;
use simcore::SimTime;
use sparklike::SparkConfig;

const GOLDEN_MONO: &str = "tests/golden/trace_small.json";
const GOLDEN_SPARK: &str = "tests/golden/trace_small_spark.json";

/// 4 × m2.4xlarge in racks of 2 with a 2:1 oversubscribed core.
fn rack_cluster() -> ClusterSpec {
    ClusterSpec::with_racks(4, MachineSpec::m2_4xlarge(), 2, 2.0)
}

/// A plan the run survives that still marks the trace: one degraded-disk
/// window (two `disk_scale` instants) and one straggler.
fn plan() -> FaultPlan {
    FaultPlan::new()
        .degrade_disk(1, 0, 0.25, SimTime::from_secs(2), SimTime::from_secs(10))
        .straggle(1, 2, 3.0)
}

fn full_duplex(shards: usize) -> MonoConfig {
    MonoConfig {
        full_duplex_network: true,
        fabric_shards: shards,
        // Arms instant collection; the test serializes the doc itself and
        // never writes this path.
        trace_path: Some(std::path::PathBuf::from("unused.json")),
        ..MonoConfig::default()
    }
}

fn mono_trace_json(shards: usize) -> String {
    let (job, blocks) = testsupport::sort4();
    let out = monotasks_core::run_with_faults(
        &rack_cluster(),
        &[(job, blocks)],
        &full_duplex(shards),
        &plan(),
    )
    .expect("plan is survivable");
    mt_trace::mono_doc(&out).to_json()
}

fn check_golden(path: &str, actual: &str) {
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(path, actual).expect("bless golden trace");
        return;
    }
    let expected = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!("missing golden trace {path} ({e}); bless with UPDATE_GOLDEN=1")
    });
    assert!(
        expected == actual,
        "{path} drifted from the emitted trace ({} vs {} bytes); \
         if the change is intentional, re-bless with UPDATE_GOLDEN=1",
        expected.len(),
        actual.len()
    );
}

/// The mono trace matches the committed reference byte-for-byte, and the
/// emission is stable within a process.
#[test]
fn mono_trace_matches_golden() {
    let json = mono_trace_json(1);
    assert_eq!(json, mono_trace_json(1), "re-emission must be byte-stable");
    mt_trace::validate_chrome_json(&json).expect("golden trace must be loadable");
    check_golden(GOLDEN_MONO, &json);
}

/// Fabric shard counts are unobservable in the trace bytes.
#[test]
fn shard_count_is_unobservable_in_trace_bytes() {
    let reference = mono_trace_json(1);
    for shards in [2, 8] {
        assert_eq!(
            reference,
            mono_trace_json(shards),
            "{shards}-shard trace diverged from single-shard"
        );
    }
}

/// The spark trace matches its committed reference byte-for-byte.
#[test]
fn spark_trace_matches_golden() {
    let (job, blocks) = testsupport::sort4();
    let cfg = SparkConfig {
        trace_path: Some(std::path::PathBuf::from("unused.json")),
        ..SparkConfig::default()
    };
    let mk = || {
        let out = sparklike::run_with_faults(
            &testsupport::cluster(4),
            &[(job.clone(), blocks.clone())],
            &cfg,
            &plan(),
        )
        .expect("plan is survivable");
        mt_trace::spark_doc(&out).to_json()
    };
    let json = mk();
    assert_eq!(json, mk(), "re-emission must be byte-stable");
    mt_trace::validate_chrome_json(&json).expect("golden trace must be loadable");
    check_golden(GOLDEN_SPARK, &json);
}
