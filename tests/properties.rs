//! Property-based tests: randomized job shapes through both executors.
//!
//! For any job the planner can produce, both executors must complete it,
//! respect stage barriers, never beat the model's lower bound, and (for
//! monotasks) conserve bytes between what stages produce and what monotasks
//! move.

use cluster::{ClusterSpec, MachineSpec};
use dataflow::{BlockMap, CostModel, JobBuilder, JobSpec};
use monotasks_core::{DiskChoice, JobPolicy, MonoConfig, Purpose};
use perfmodel::{profile_stages, Scenario};
use proptest::prelude::*;

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// A randomized linear job: scan → [shuffle → reduce]? → sink.
#[derive(Clone, Debug)]
struct RandomJob {
    machines: usize,
    disks: usize,
    total_gib: f64,
    map_tasks: usize,
    reduce_tasks: Option<usize>,
    byte_sel: f64,
    in_memory_input: bool,
    in_memory_shuffle: bool,
    write_output: bool,
}

impl RandomJob {
    fn build(&self) -> (ClusterSpec, JobSpec, BlockMap) {
        let total = self.total_gib * GIB;
        let records = total / 64.0;
        let cost = CostModel::spark_1_3();
        let mut b = if self.in_memory_input {
            JobBuilder::new("prop", cost).read_memory(total, records, self.map_tasks, true)
        } else {
            JobBuilder::new("prop", cost).read_disk(total, records, total / self.map_tasks as f64)
        };
        b = b.map(1.0, self.byte_sel, true);
        let job = match self.reduce_tasks {
            Some(r) => {
                let b = b.shuffle(r, self.in_memory_shuffle).map(1.0, 1.0, true);
                if self.write_output {
                    b.write_disk(1.0)
                } else {
                    b.collect()
                }
            }
            None => {
                if self.write_output {
                    b.write_disk(1.0)
                } else {
                    b.collect()
                }
            }
        };
        let cluster = ClusterSpec::new(self.machines, {
            let mut m = MachineSpec::m2_4xlarge();
            m.disks.truncate(self.disks);
            m
        });
        let blocks = BlockMap::round_robin(
            JobBuilder::blocks_allocated(&job).max(1),
            self.machines,
            self.disks,
        );
        (cluster, job, blocks)
    }
}

fn random_job() -> impl Strategy<Value = RandomJob> {
    (
        1usize..=4,
        1usize..=2,
        0.25f64..=3.0,
        1usize..=24,
        prop_oneof![Just(None), (1usize..=16).prop_map(Some)],
        0.05f64..=1.5,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(machines, disks, total_gib, map_tasks, reduce_tasks, byte_sel, imi, ims, wo)| {
                RandomJob {
                    machines,
                    disks,
                    total_gib,
                    map_tasks,
                    reduce_tasks,
                    byte_sel,
                    in_memory_input: imi,
                    in_memory_shuffle: ims,
                    write_output: wo,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn monotasks_executor_invariants(rj in random_job()) {
        let (cluster, job, blocks) = rj.build();
        prop_assert!(job.validate().is_ok());
        let out = monotasks_core::run(
            &cluster,
            &[(job.clone(), blocks)],
            &monotasks_core::MonoConfig::default(),
        );
        let report = &out.jobs[0];
        // Stage barriers hold.
        for w in report.stages.windows(2) {
            prop_assert!(w[1].start >= w[0].end);
        }
        // Records' timings are ordered and inside the job window.
        for r in &out.records {
            prop_assert!(r.queued <= r.started && r.started < r.ended);
            prop_assert!(r.ended <= report.end);
        }
        // Byte conservation: input reads match the spec.
        let spec_input: f64 = job.stages[0].tasks.iter().map(|t| match t.input {
            dataflow::InputSpec::DiskBlock { bytes, .. } => bytes,
            _ => 0.0,
        }).sum();
        let read: f64 = out.records.iter()
            .filter(|r| r.purpose == Purpose::ReadInput)
            .map(|r| r.bytes)
            .sum();
        prop_assert!((read - spec_input).abs() <= spec_input * 1e-9 + 1.0);
        // The measured stage time never beats the model's lower bound.
        let profiles = profile_stages(&out.records, &out.jobs);
        let scen = Scenario::of_cluster(&cluster);
        for p in &profiles {
            let ideal = perfmodel::model::ideal_times(p, &scen).stage_time();
            prop_assert!(
                p.measured_secs >= ideal * 0.999,
                "stage {:?}: measured {} < ideal {}", p.stage, p.measured_secs, ideal
            );
        }
    }

    #[test]
    fn spark_executor_invariants(rj in random_job()) {
        let (cluster, job, blocks) = rj.build();
        let out = sparklike::run(
            &cluster,
            &[(job.clone(), blocks)],
            &sparklike::SparkConfig::default(),
        );
        let report = &out.jobs[0];
        prop_assert_eq!(out.tasks.len(), job.total_tasks());
        for w in report.stages.windows(2) {
            prop_assert!(w[1].start >= w[0].end);
        }
        for t in &out.tasks {
            prop_assert!(t.start <= t.end);
            prop_assert!(t.end <= report.end);
        }
    }

    #[test]
    fn monotasks_executor_is_correct_under_any_configuration(
        rj in random_job(),
        net_outstanding in 1usize..8,
        extra in any::<bool>(),
        rr in any::<bool>(),
        duplex in any::<bool>(),
        shortest_queue in any::<bool>(),
        fifo in any::<bool>(),
        mem_limit in prop_oneof![Just(None), (0.001f64..0.1).prop_map(Some)],
    ) {
        // Whatever the configuration knobs, the executor must complete the
        // job with barriers intact and never beat the model's lower bound.
        let (cluster, job, blocks) = rj.build();
        let cfg = MonoConfig {
            net_outstanding,
            extra_multitask: extra,
            rr_disk_queues: rr,
            full_duplex_network: duplex,
            write_disk_choice: if shortest_queue {
                DiskChoice::ShortestQueue
            } else {
                DiskChoice::RoundRobin
            },
            job_policy: if fifo { JobPolicy::Fifo } else { JobPolicy::Fair },
            memory_limit_fraction: mem_limit,
            ..MonoConfig::default()
        };
        let out = monotasks_core::run(&cluster, &[(job.clone(), blocks)], &cfg);
        let report = &out.jobs[0];
        for w in report.stages.windows(2) {
            prop_assert!(w[1].start >= w[0].end);
        }
        let profiles = profile_stages(&out.records, &out.jobs);
        let scen = Scenario::of_cluster(&cluster);
        for p in &profiles {
            let ideal = perfmodel::model::ideal_times(p, &scen).stage_time();
            prop_assert!(p.measured_secs >= ideal * 0.999);
        }
        // Monotask records account for the same number of compute monotasks
        // as there are tasks, regardless of configuration.
        let computes = out
            .records
            .iter()
            .filter(|r| r.purpose == Purpose::Compute)
            .count();
        prop_assert_eq!(computes, job.total_tasks());
    }

    #[test]
    fn executors_stay_within_a_small_factor_of_each_other(rj in random_job()) {
        let (cluster, job, blocks) = rj.build();
        let mono = monotasks_core::run(
            &cluster,
            &[(job.clone(), blocks.clone())],
            &monotasks_core::MonoConfig::default(),
        ).jobs[0].duration_secs();
        let spark = sparklike::run(
            &cluster,
            &[(job, blocks)],
            &sparklike::SparkConfig::default(),
        ).jobs[0].duration_secs();
        let ratio = mono / spark;
        // The architectures differ, but neither should ever be an order of
        // magnitude apart on these small uniform jobs.
        prop_assert!((0.2..=5.0).contains(&ratio), "ratio {}", ratio);
    }
}
