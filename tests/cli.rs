//! End-to-end tests of the `monotasks-sim` command-line interface.

use std::process::Command;

fn run_cli(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_monotasks-sim"))
        .args(args)
        .output()
        .expect("spawn monotasks-sim");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn help_prints_usage() {
    let (stdout, _, ok) = run_cli(&["--help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("monotasks-sim sort"));
}

#[test]
fn sort_runs_both_engines_and_reports_bottlenecks() {
    let (stdout, stderr, ok) =
        run_cli(&["sort", "--gib", "2", "--values", "10", "--machines", "2"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("monotasks:"), "{stdout}");
    assert!(stdout.contains("spark-like:"), "{stdout}");
    assert!(stdout.contains("bottleneck"), "{stdout}");
}

#[test]
fn prediction_flag_produces_a_what_if_line() {
    let (stdout, stderr, ok) = run_cli(&[
        "sort",
        "--gib",
        "2",
        "--machines",
        "2",
        "--engine",
        "mono",
        "--predict-machines",
        "4",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(
        stdout.contains("predicted under the what-if configuration"),
        "{stdout}"
    );
}

#[test]
fn bad_arguments_fail_with_usage() {
    let (_, stderr, ok) = run_cli(&["sort", "--nope"]);
    assert!(!ok);
    assert!(stderr.contains("unknown option"));
    assert!(stderr.contains("USAGE"));

    let (_, stderr, ok) = run_cli(&["bdb"]);
    assert!(!ok);
    assert!(stderr.contains("bdb needs --query"));
}

#[test]
fn prediction_without_mono_engine_is_an_error() {
    let (_, stderr, ok) = run_cli(&[
        "sort",
        "--gib",
        "1",
        "--machines",
        "2",
        "--engine",
        "spark",
        "--predict-ssd",
    ]);
    assert!(!ok);
    assert!(stderr.contains("predictions need"));
}
