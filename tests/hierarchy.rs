//! The rack-sharded hierarchical fabric, end to end: shard counts must be
//! unobservable in results (only in wall-clock), a single rack spanning the
//! cluster must reproduce the flat fabric bit-for-bit, and a partition
//! cutting an entire rack must compose with hierarchical mode — quarantine
//! and lineage resubmission fire, and the recovery counters are identical
//! for any shard count.

mod testsupport;

use cluster::{ClusterSpec, MachineSpec};
use dataflow::BlockMap;
use monotasks_core::MonoConfig;
use proptest::prelude::*;
use testsupport::jobs_debug_sans_host_time;
use workloads::{rack_partition_plan, sort_job, SortConfig};

/// `machines` × m2.4xlarge grouped into racks of `rack_size` with an
/// oversubscribed aggregation core.
fn rack_cluster(machines: usize, rack_size: usize, oversub: f64) -> ClusterSpec {
    ClusterSpec::with_racks(machines, MachineSpec::m2_4xlarge(), rack_size, oversub)
}

fn full_duplex(shards: usize, epsilon: f64, quantum_secs: f64) -> MonoConfig {
    MonoConfig {
        full_duplex_network: true,
        fabric_shards: shards,
        fabric_epsilon: epsilon,
        fabric_quantum_secs: quantum_secs,
        ..MonoConfig::default()
    }
}

/// A digest of everything a run reports deterministically: per-job stage and
/// recovery detail plus the exact makespan bits.
fn digest(out: &monotasks_core::MonoRunOutput) -> (String, u64) {
    (
        jobs_debug_sans_host_time(&out.jobs),
        out.makespan.as_secs_f64().to_bits(),
    )
}

/// Shard counts 1, 2, 4, and 8 produce byte-identical reports on a
/// rack-oversubscribed sort, with the exact core and with ε/Δ on the core.
#[test]
fn shard_count_is_unobservable_end_to_end() {
    let cluster = rack_cluster(8, 2, 4.0);
    let (job, blocks) = sort_job(&SortConfig::new(8.0, 24, 8, 2));
    for (eps, q) in [(0.0, 0.0), (0.01, 1e-3)] {
        let reference = digest(&monotasks_core::run(
            &cluster,
            &[(job.clone(), blocks.clone())],
            &full_duplex(1, eps, q),
        ));
        for shards in [2, 4, 8] {
            let out = monotasks_core::run(
                &cluster,
                &[(job.clone(), blocks.clone())],
                &full_duplex(shards, eps, q),
            );
            assert_eq!(
                reference,
                digest(&out),
                "{shards} shards diverged from single-shard (eps={eps}, q={q})"
            );
        }
    }
}

/// One rack spanning the whole cluster never routes a flow through the core,
/// so the hierarchical fabric must reproduce the flat exact fabric
/// bit-for-bit — the single-level path stays the spec.
#[test]
fn single_rack_cluster_matches_flat_fabric() {
    let machines = 4;
    let (job, blocks) = testsupport::sort4();
    let flat = monotasks_core::run(
        &testsupport::cluster(machines),
        &[(job.clone(), blocks.clone())],
        &full_duplex(1, 0.0, 0.0),
    );
    for shards in [1, 4] {
        let hier = monotasks_core::run(
            &rack_cluster(machines, machines, 1.0),
            &[(job.clone(), blocks.clone())],
            &full_duplex(shards, 0.0, 0.0),
        );
        assert_eq!(
            digest(&flat),
            digest(&hier),
            "single-rack hierarchy diverged from the flat fabric ({shards} shards)"
        );
    }
}

/// A partition cutting an entire rack away composes with hierarchical mode:
/// fetch timeouts fire, the unreachable senders are quarantined, their lost
/// shuffle outputs are resubmitted via lineage on the majority side, and the
/// whole recovery — every counter — is identical for 1 and 8 shards.
#[test]
fn rack_partition_composes_with_the_hierarchy() {
    let cluster = rack_cluster(4, 2, 2.0);
    let (job, blocks) = sort_job(&SortConfig::new(4.0, 10, 4, 2));
    // Replication 3 guarantees every block a replica outside its rack of
    // two (consecutive homes always span racks), so the majority side can
    // re-run the lost maps instead of failing fast.
    let blocks = BlockMap::round_robin_replicated(
        blocks.blocks(),
        blocks.machines(),
        blocks.disks_per_machine(),
        3,
    );
    let cfg = |shards| MonoConfig {
        fetch_timeout_secs: Some(1.0),
        fetch_backoff_base_secs: 0.5,
        ..full_duplex(shards, 0.0, 0.0)
    };
    let free = monotasks_core::try_run(&cluster, &[(job.clone(), blocks.clone())], &cfg(1))
        .expect("fault-free run");
    let free_s = free.makespan.as_secs_f64();
    // Cut mid-shuffle; the "heal" lands far beyond anything the run can
    // reach, so recovery must re-plan rather than wait it out.
    let plan = rack_partition_plan(&cluster, 1, free_s * 0.5, free_s * 100.0);
    let run = |shards| {
        monotasks_core::run_with_faults(
            &cluster,
            &[(job.clone(), blocks.clone())],
            &cfg(shards),
            &plan,
        )
        .expect("run must re-plan around the dark rack")
    };
    let single = run(1);
    let rec = &single.jobs[0].recovery;
    assert!(rec.fetch_retries > 0, "no fetch retries: {rec:?}");
    assert!(
        rec.fetches_replanned > 0,
        "no quarantine re-planning: {rec:?}"
    );
    assert!(
        rec.recompute_seconds > 0.0,
        "no lineage resubmission: {rec:?}"
    );
    assert!(
        single.makespan.as_secs_f64() > free_s,
        "the dark rack had no effect"
    );
    let sharded = run(8);
    assert_eq!(
        digest(&single),
        digest(&sharded),
        "recovery diverged between 1 and 8 shards"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Any machine count, rack size, shard pair, and ε/Δ choice: the two
    /// shard counts report byte-identically.
    #[test]
    fn shard_count_invariance_holds_for_random_topologies(
        machines in 2usize..=6,
        rack_size in 1usize..=6,
        shards_a in 1usize..=8,
        shards_b in 1usize..=8,
        approx in any::<bool>(),
    ) {
        let rack_size = rack_size.min(machines);
        let cluster = rack_cluster(machines, rack_size, 4.0);
        let (job, blocks) = sort_job(&SortConfig::new(machines as f64, 8, machines, 2));
        let (eps, q) = if approx { (0.02, 1e-3) } else { (0.0, 0.0) };
        let run = |shards| {
            monotasks_core::run(&cluster, &[(job.clone(), blocks.clone())], &full_duplex(shards, eps, q))
        };
        prop_assert_eq!(digest(&run(shards_a)), digest(&run(shards_b)));
    }
}
